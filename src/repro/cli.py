"""Command-line interface.

TEMPI ships a measurement binary that administrators run once per system;
this module is the reproduction's equivalent, plus two convenience commands
used while studying the model:

``python -m repro.cli measure --output summit.json``
    Run the full system-measurement sweep and write the measurement file the
    performance model loads at run time (Sec. 6.3).

``python -m repro.cli predict --measurement summit.json --size 1048576 --block 8``
    Query the performance model: the three Eq. 1-3 latencies and the selected
    method for one (object size, block length) point.

``python -m repro.cli halo --nodes 512 --ranks-per-node 6``
    Evaluate the paper-scale halo-exchange model (Fig. 12) for one scale
    point, printing the phase breakdown and the speedup over the baseline.

``python -m repro.cli select-table --plans 4 --nic duplex --incast 4``
    Dump the selected packing method per (object size, block length) grid
    cell — the Fig. 9b selection map — contention-free (all loads 0) or
    under NIC backlog, through the same :mod:`repro.tempi.selection` pricing
    the interposer uses.  ``--plans`` folds in this rank's injection-port
    queue, ``--incast`` the destination's ingestion-port queue and
    ``--link-busy`` the occupancy of the link to it (the latter two priced
    only under ``--nic duplex``; ``--nic inject_only`` is the PR-4
    injection-only ablation).  Under load each cell is annotated with the
    term that bound it: ``/pak`` (its own pack kernel), ``/inj`` (injection
    port), ``/lnk`` (link) or ``/ing`` (ingestion port).  With
    ``--topology spec.json`` the map is printed once per resolvable path
    class (intra-island, cross-island, intra-leaf, cross-leaf), each cell
    priced along its resolved path — the crossover divergence
    ``bench_topology.py`` measures.

``python -m repro.cli topo show --spec spec.json --ranks 16``
    Resolve a :class:`~repro.machine.topology.TopologySpec` (flat when
    ``--spec`` is omitted) over ``--ranks`` ranks and print the placed
    shape: nodes, islands, rails, leaves, uplink bundle bandwidths, and one
    representative pair per path class with its hops, bound ledgers and
    wire times.

``python -m repro.cli replay trace.json``
    Replay a recorded communication trace (:mod:`repro.apps.replay`: MoE
    dispatch rounds, pipeline hops, allreduces — anything emitting the
    op/counts/peers schema) through TEMPI's interposer on a fresh world,
    twice, and assert the priced clocks, counters and payload digests are
    bit-identical across the runs before printing the per-rank breakdown.
    ``--runs`` raises the repetition count, ``--allreduce-algorithm`` and
    ``--nic`` pin the config knobs the replay prices under.

``python -m repro.cli lint``
    Run the static determinism lint (:mod:`tools.analyze`) over the source
    tree: wall-clock/randomness on priced paths, mutation reachable from
    selection pricing, unordered iteration feeding clock arithmetic,
    undocumented knobs/counters, raw float accumulation in the NIC ledgers.
    Nonzero exit on any finding.

``python -m repro.cli sanitize``
    Replay the fig9/fig14/fig15/incast benchmarks (``--smoke`` subsets, or
    ``--full``) under the runtime clock sanitizer
    (:mod:`repro.tempi.sanitizer`): vector clocks over NIC commits, cross-rank
    backlog reads audited for a happens-before edge, port monotonicity, and
    pricing-purity checksums.  Nonzero exit on any violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.apps.exchange_model import model_halo_exchange
from repro.apps.halo import HaloSpec
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import SystemMeasurement, measure_system
from repro.tempi.perf_model import PerformanceModel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TEMPI reproduction utilities (measurement sweep, model queries, halo model)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser("measure", help="run the system measurement sweep")
    measure.add_argument("--output", type=Path, default=Path("measurement.json"),
                         help="where to write the measurement file")

    predict = sub.add_parser("predict", help="query the packing-method performance model")
    predict.add_argument("--measurement", type=Path, default=None,
                         help="measurement file from 'measure' (measured on the fly if omitted)")
    predict.add_argument("--size", type=int, required=True, help="object payload in bytes")
    predict.add_argument("--block", type=int, required=True, help="contiguous block length in bytes")

    halo = sub.add_parser("halo", help="evaluate the paper-scale halo-exchange model (Fig. 12)")
    halo.add_argument("--nodes", type=int, required=True)
    halo.add_argument("--ranks-per-node", type=int, default=6)
    halo.add_argument("--points", type=int, default=256,
                      help="gridpoints per rank along each axis (paper: 256)")
    halo.add_argument("--radius", type=int, default=3, help="stencil radius (paper: 3)")

    table = sub.add_parser(
        "select-table",
        help="dump the selected method per (size, block length) grid cell (Fig. 9b map)",
    )
    table.add_argument("--measurement", type=Path, default=None,
                       help="measurement file from 'measure' (measured on the fly if omitted)")
    table.add_argument("--plans", type=int, default=0,
                       help="concurrent plans' worth of injection-port backlog to fold in "
                            "(0: no send-side queue)")
    table.add_argument("--nic", choices=("duplex", "inject_only"), default="duplex",
                       help="NIC accounting to price with: 'duplex' folds link and "
                            "ingestion backlog in, 'inject_only' is the PR-4 "
                            "injection-only ablation")
    table.add_argument("--incast", type=int, default=0,
                       help="senders' worth of ingestion-port backlog converging on the "
                            "destination peer (duplex only; the hot-receiver term)")
    table.add_argument("--link-busy", type=int, default=0,
                       help="pending messages' worth of full-wire occupancy on the link "
                            "to the destination (duplex only)")
    table.add_argument("--sizes", type=int, nargs="*", default=None,
                       help="object sizes in bytes (default: 256 B to 4 MiB, powers of two)")
    table.add_argument("--blocks", type=int, nargs="*", default=None,
                       help="contiguous block lengths in bytes (default: the Fig. 10 sweep)")
    table.add_argument("--topology", type=Path, default=None,
                       help="TopologySpec JSON file: print one map per resolvable path "
                            "class, each cell priced along its resolved path")

    topo = sub.add_parser("topo", help="inspect a cluster topology")
    topo_sub = topo.add_subparsers(dest="topo_command", required=True)
    topo_show = topo_sub.add_parser(
        "show",
        help="resolve a topology spec over a rank count and print the placed shape",
    )
    topo_show.add_argument("--spec", type=Path, default=None,
                           help="TopologySpec JSON file (flat when omitted)")
    topo_show.add_argument("--ranks", type=int, default=16,
                           help="world size to place (default 16)")
    topo_show.add_argument("--ranks-per-node", type=int, default=1,
                           help="ranks per node for a flat default spec "
                                "(ignored when --spec is given)")
    topo_show.add_argument("--size", type=int, default=1 << 20,
                           help="sample message bytes for the per-class wire times")

    replay = sub.add_parser(
        "replay",
        help="replay a recorded communication trace and report priced clocks",
    )
    replay.add_argument("trace", type=Path,
                        help="trace JSON document (see repro.apps.replay for the schema)")
    replay.add_argument("--measurement", type=Path, default=None,
                        help="measurement file for the performance model "
                             "(default: measure in-process)")
    replay.add_argument("--runs", type=int, default=2,
                        help="independent replays to run; all must agree bit-for-bit "
                             "(default: 2)")
    replay.add_argument("--allreduce-algorithm", default="auto",
                        choices=("auto", "ring", "tree", "hierarchical"),
                        help="pin the allreduce schedule replayed allreduce records use")
    replay.add_argument("--nic", default="duplex", choices=("duplex", "inject_only"),
                        help="NIC accounting mode the replay prices under")

    lint = sub.add_parser(
        "lint",
        help="run the simulator's static determinism lint (tools/analyze)",
    )
    lint.add_argument("--select", nargs="*", default=None, metavar="SIMxxx",
                      help="only run these rule codes (default: all rules)")

    sanitize = sub.add_parser(
        "sanitize",
        help="replay the figure benchmarks under the runtime clock sanitizer",
    )
    sanitize.add_argument("--full", action="store_true",
                          help="full benchmark sweeps instead of the --smoke subsets")

    bench = sub.add_parser("bench", help="benchmarks of the simulator itself")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    sim = bench_sub.add_parser(
        "sim-throughput",
        help="simulated messages/sec, eager vs cached control plane "
             "(the event-core fast path)",
    )
    sim.add_argument("--smoke", action="store_true",
                     help="CI sweep (256/512/1024 ranks) without the 2048-rank point")
    sim.add_argument("--ranks", type=int, nargs="*", default=None,
                     help="explicit rank counts to sweep")
    sim.add_argument("--output", type=Path, default=None,
                     help="write the sweep as a BENCH_sim.json baseline here")
    sim.add_argument("--topology", default=None,
                     help="add a hierarchical sweep leg: 'fabric' (the built-in "
                          "fat-tree preset) or a TopologySpec JSON file")
    sim.add_argument("--profile", action="store_true",
                     help="cProfile the booking loop at the largest requested rank "
                          "count (scalar and batched legs, top 20 by cumulative time) "
                          "instead of sweeping")
    return parser


def _cmd_measure(args: argparse.Namespace) -> int:
    measurement = measure_system(SUMMIT, path=args.output)
    print(f"wrote {args.output} ({len(measurement.sizes)} sizes x "
          f"{len(measurement.block_lengths)} block lengths, machine '{measurement.machine_name}')")
    return 0


def _load_model(measurement_path: Optional[Path]) -> PerformanceModel:
    if measurement_path is not None:
        return PerformanceModel(SystemMeasurement.load(measurement_path))
    return PerformanceModel(measure_system(SUMMIT))


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.size <= 0 or args.block <= 0:
        print("error: --size and --block must be positive", file=sys.stderr)
        return 2
    model = _load_model(args.measurement)
    estimate = model.estimate(args.size, args.block)
    print(f"object          : {args.size:,} B in {args.block} B contiguous runs")
    print(f"T_oneshot (Eq.2): {estimate.oneshot * 1e6:12.1f} us")
    print(f"T_device  (Eq.1): {estimate.device * 1e6:12.1f} us")
    print(f"T_staged  (Eq.3): {estimate.staged * 1e6:12.1f} us")
    print(f"selected method : {estimate.best().value}")
    return 0


def _cmd_halo(args: argparse.Namespace) -> int:
    if args.nodes <= 0 or args.ranks_per_node <= 0:
        print("error: --nodes and --ranks-per-node must be positive", file=sys.stderr)
        return 2
    spec = HaloSpec(nx=args.points, ny=args.points, nz=args.points, radius=args.radius)
    baseline = model_halo_exchange(args.nodes, args.ranks_per_node, spec=spec, tempi=False)
    accelerated = model_halo_exchange(args.nodes, args.ranks_per_node, spec=spec, tempi=True)
    print(f"scale             : {args.nodes} nodes x {args.ranks_per_node} ranks/node "
          f"= {baseline.nranks} ranks")
    print(f"domain            : {args.points}^3 points/rank, radius {args.radius}, "
          f"{spec.point_bytes} B/point")
    print(f"baseline exchange : pack {baseline.pack_s * 1e3:9.2f} ms | "
          f"alltoallv {baseline.comm_s * 1e3:9.2f} ms | unpack {baseline.unpack_s * 1e3:9.2f} ms")
    print(f"TEMPI exchange    : pack {accelerated.pack_s * 1e3:9.2f} ms | "
          f"alltoallv {accelerated.comm_s * 1e3:9.2f} ms | unpack {accelerated.unpack_s * 1e3:9.2f} ms")
    print(f"speedup           : {baseline.total_s / accelerated.total_s:,.0f}x")
    return 0


def _cmd_select_table(args: argparse.Namespace) -> int:
    from repro.machine.network import DEFAULT_WIRE_OVERLAP, NetworkModel
    from repro.machine.topology import Topology, TopologyError, TopologySpec
    from repro.tempi.measurement import DEFAULT_BLOCKS
    from repro.tempi.selection import contended_estimate

    if args.plans < 0 or args.incast < 0 or args.link_busy < 0:
        print("error: --plans, --incast and --link-busy must be non-negative", file=sys.stderr)
        return 2
    sizes = args.sizes if args.sizes else [1 << p for p in range(8, 23)]
    blocks = args.blocks if args.blocks else list(DEFAULT_BLOCKS)
    if any(s <= 0 for s in sizes) or any(b <= 0 for b in blocks):
        print("error: sizes and blocks must be positive", file=sys.stderr)
        return 2
    topology: Optional[Topology] = None
    if args.topology is not None:
        try:
            spec = TopologySpec.load(args.topology)
        except (OSError, TopologyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        nnodes = 2 * spec.leaf_radix if spec.leaf_radix else 2
        topology = Topology(nnodes * spec.ranks_per_node, spec=spec)
    model = _load_model(args.measurement)
    network = NetworkModel(SUMMIT)
    duplex = args.nic == "duplex"
    incast = args.incast if duplex else 0
    link_busy = args.link_busy if duplex else 0
    loaded = args.plans or incast or link_busy
    parts = [f"nic={args.nic}"]
    if args.plans:
        parts.append(f"{args.plans} concurrent plans' injection backlog")
    if incast:
        parts.append(f"{incast} senders' ingestion backlog at the destination")
    if link_busy:
        parts.append(f"{link_busy} messages queued on the link")
    if (args.incast or args.link_busy) and not duplex:
        parts.append("(--incast/--link-busy ignored: inject_only prices the send side only)")
    if not loaded:
        load = ", ".join(["contention-free", parts[0]] + parts[1:])
    else:
        load = ", ".join(parts)

    def print_grid(oneshot_wire, device_wire) -> None:
        """One selection map; wire callables map a size to its override."""
        if loaded or oneshot_wire is not None:
            print("each cell: method/bound — pak=pack kernel, inj=injection port, "
                  "lnk=link, ing=ingestion port")
        width = 13 if loaded or oneshot_wire is not None else 9
        print("bytes      " + "".join(f"{block:>{width}}" for block in blocks))
        for size in sizes:
            cells = []
            for block in blocks:
                if not loaded and oneshot_wire is None:
                    cells.append(model.choose_method(size, min(block, size)).value)
                    continue
                # Each in-flight plan parks one inter-node message of this size
                # on the respective port — the same load shape the Fig. 9 and
                # incast benchmarks sweep — and selection prices the queues it
                # would see.
                wire = network.message_time(size, same_node=False, device_buffers=True)
                estimate = contended_estimate(
                    model,
                    size,
                    min(block, size),
                    args.plans * DEFAULT_WIRE_OVERLAP * wire,
                    link_backlog_s=link_busy * wire,
                    ingest_backlog_s=incast * DEFAULT_WIRE_OVERLAP * wire,
                    oneshot_wire_s=None if oneshot_wire is None else oneshot_wire(size),
                    device_wire_s=None if device_wire is None else device_wire(size),
                )
                bound = {"pack": "pak", "inject": "inj", "link": "lnk",
                         "ingest": "ing", "rail": "ral", "uplink": "upl"}
                cells.append(f"{estimate.best().value}/{bound[estimate.bound()]}")
            print(f"{size:>9}  " + "".join(f"{cell:>{width}}" for cell in cells))

    if topology is None or not topology.hierarchical:
        if topology is not None:
            print("(flat topology spec: one map, the pre-topology pricing)")
        print(f"selected method per (size, block length) cell — {load}")
        print_grid(None, None)
        return 0
    pairs = {k: v for k, v in topology.representative_pairs().items() if k != "self"}
    print(f"selected method per (size, block length) cell, per path class — {load}")
    for kind, (src, dst) in pairs.items():
        print(f"\n== path class {kind} (ranks {src} -> {dst})")
        print_grid(
            lambda size, s=src, d=dst: topology.message_time(
                s, d, size, device_buffers=False
            ),
            lambda size, s=src, d=dst: topology.message_time(
                s, d, size, device_buffers=True
            ),
        )
    return 0


def _cmd_topo_show(args: argparse.Namespace) -> int:
    from repro.machine.topology import Topology, TopologyError, TopologySpec

    if args.ranks <= 0 or args.size <= 0:
        print("error: --ranks and --size must be positive", file=sys.stderr)
        return 2
    try:
        if args.spec is not None:
            spec = TopologySpec.load(args.spec)
        else:
            spec = TopologySpec.flat(args.ranks_per_node)
        topology = Topology(args.ranks, spec=spec)
    except (OSError, TopologyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shape = "flat (pre-topology books)" if spec.is_flat else "hierarchical"
    print(f"topology          : {shape} on {topology.machine.name}")
    print(f"placement         : {topology.nranks} ranks on {topology.nnodes} nodes "
          f"({spec.ranks_per_node}/node)")
    island = spec.island_size if spec.island_size else spec.ranks_per_node
    print(f"islands           : {island} rank(s) per NVLink island")
    if spec.rails_per_node:
        print(f"rails             : {spec.rails_per_node} shared NIC rail(s)/node, "
              f"policy '{spec.rail_policy}'")
    else:
        print("rails             : dedicated per-rank NIC")
    if spec.leaf_radix:
        device_bw = topology.uplink_bandwidth_Bps(topology.machine.inter_gpu)
        host_bw = topology.uplink_bandwidth_Bps(topology.machine.inter_cpu)
        print(f"fabric            : {topology.nleaves} leaf switch(es), "
              f"{spec.leaf_radix} nodes/leaf, {spec.oversubscription:g}x oversubscribed")
        print(f"uplink bundle     : {device_bw / 1e9:.2f} GB/s device, "
              f"{host_bw / 1e9:.2f} GB/s host")
    else:
        print("fabric            : single flat switch")
    print(f"path classes at {args.size:,} B:")
    for kind, (src, dst) in topology.representative_pairs().items():
        path = topology.resolve(src, dst, device_buffers=True)
        hops = "+".join(hop.kind for hop in path.hops)
        ledgers = []
        if path.rail is not None:
            ledgers.append(f"rail{path.rail}")
        for key, _bandwidth in path.shared:
            ledgers.append(f"{key[0]}{key[1]}")
        device_us = topology.message_time(src, dst, args.size, device_buffers=True) * 1e6
        host_us = topology.message_time(src, dst, args.size, device_buffers=False) * 1e6
        print(f"  {kind:7} {src:>4} -> {dst:<4} hops {hops:<18} "
              f"ledgers {','.join(ledgers) or '-':<12} "
              f"wire {device_us:9.1f} us device / {host_us:9.1f} us host")
    return 0


def _repo_root() -> Optional[Path]:
    """The repository checkout this package was imported from, if any.

    ``repro`` lives at ``<root>/src/repro``; the lint tool and the figure
    benchmarks live beside ``src`` at ``<root>/tools`` and
    ``<root>/benchmarks``.  An installed copy of the package has neither, in
    which case the source-tree commands (``lint``, ``sanitize``) refuse.
    """
    root = Path(__file__).resolve().parents[2]
    if (root / "tools" / "analyze" / "__init__.py").exists():
        return root
    return None


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.apps.replay import TraceError, load_trace, replay_trace
    from repro.tempi.config import TempiConfig

    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2
    try:
        trace = load_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    except TraceError as exc:
        print(f"error: malformed trace: {exc}", file=sys.stderr)
        return 2
    model = _load_model(args.measurement)
    config = TempiConfig(allreduce_algorithm=args.allreduce_algorithm, nic=args.nic)
    results = [replay_trace(trace, model=model, config=config) for _ in range(args.runs)]
    first = results[0]
    for index, result in enumerate(results[1:], start=2):
        if (
            result.clocks != first.clocks
            or result.stats != first.stats
            or result.digests != first.digests
        ):
            print(
                f"error: run {index} diverged from run 1 "
                "(clocks/counters/digests are not bit-identical)",
                file=sys.stderr,
            )
            return 1
    print(f"trace    : {args.trace} ({first.ops} ops, {first.nranks} ranks)")
    print(f"runs     : {args.runs} replays, bit-identical clocks/counters/digests")
    for rank, (clock, stats) in enumerate(zip(first.clocks, first.stats)):
        print(
            f"rank {rank:3d} : {clock * 1e3:10.4f} ms | "
            f"plans {stats['plans_built']:4d} | "
            f"stalls inj {stats['contention_stalls']:3d} "
            f"ing {stats['ingest_stalls']:3d}"
        )
    print(f"completion: {first.completion_s * 1e3:.4f} ms")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    root = _repo_root()
    if root is None:
        print("error: 'repro lint' needs the source checkout (tools/analyze not found)",
              file=sys.stderr)
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.analyze.cli import main as lint_main

    argv = ["--root", str(root)]
    if args.select:
        argv.append("--select")
        argv.extend(args.select)
    return lint_main(argv)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import importlib.util

    from repro.tempi.config import sanitize_default
    from repro.tempi.sanitizer import ClockSanitizer

    root = _repo_root()
    if root is None:
        print("error: 'repro sanitize' needs the source checkout (benchmarks/ not found)",
              file=sys.stderr)
        return 2
    bench_dir = root / "benchmarks"

    def load_bench(filename: str):
        path = bench_dir / filename
        spec = importlib.util.spec_from_file_location(f"_sanitized_{path.stem}", path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def report(name: str, failures: list[str]) -> None:
        counters = ClockSanitizer.aggregate_counters()
        print(f"   sanitizer: posts={counters['posts']} ingests={counters['ingests']} "
              f"joins={counters['joins']} hb_checks={counters['hb_checks']} "
              f"purity_checks={counters['purity_checks']} "
              f"violations={counters['violations']}")
        if counters["violations"]:
            failures.append(f"{name}: {counters['violations']} recorded violation(s)")
        if counters["posts"] == 0:
            failures.append(f"{name}: sanitizer observed no NIC traffic (vacuous replay)")

    failures: list[str] = []
    label = "full" if args.full else "--smoke"
    # The ambient default makes every TempiConfig the benchmarks construct a
    # sanitized one; priced results are unchanged (the recorder only observes),
    # so each bench's own internal checks still validate the real numbers.
    with sanitize_default(True):
        for name in ("bench_fig9_selection.py", "bench_fig15_contention.py",
                     "bench_incast.py"):
            ClockSanitizer.reset_aggregate()
            print(f"== sanitized replay: {name} ({label})")
            try:
                module = load_bench(name)
                code = module.main([] if args.full else ["--smoke"])
            except Exception as exc:  # noqa: BLE001 - any failure fails the replay
                failures.append(f"{name}: {type(exc).__name__}: {exc}")
                print(f"   FAILED: {type(exc).__name__}: {exc}", file=sys.stderr)
                continue
            if code != 0:
                failures.append(f"{name}: exit code {code}")
            report(name, failures)
        # fig14 has no standalone entry point; drive its exchange helper over
        # the serial and overlapped engines directly.
        ClockSanitizer.reset_aggregate()
        print("== sanitized replay: bench_fig14_overlap.py (exchange sweep)")
        try:
            module = load_bench("bench_fig14_overlap.py")
            model = _load_model(None)
            for mode, overlap in (("neighbor", False), ("neighbor", True),
                                  ("overlap", True)):
                module._exchange_latency(4, model, mode=mode, overlap=overlap)
        except Exception as exc:  # noqa: BLE001 - any failure fails the replay
            failures.append(f"bench_fig14_overlap.py: {type(exc).__name__}: {exc}")
            print(f"   FAILED: {type(exc).__name__}: {exc}", file=sys.stderr)
        else:
            report("bench_fig14_overlap.py", failures)
    if failures:
        print(f"sanitize: {len(failures)} failure(s)", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("sanitize: all benchmark replays clean")
    return 0


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    import json

    from repro.bench.simthroughput import (
        CACHED_CONFIG,
        FABRIC_SPEC,
        FULL_RANKS,
        HALO_DEGREE,
        SMOKE_RANKS,
        _cached_iters,
        check_sweep,
        default_model,
        profile_drive,
        render_table,
        run_sweep,
    )
    from repro.machine.topology import TopologyError, TopologySpec

    if args.ranks:
        rank_counts = tuple(args.ranks)
        mode = "custom"
    elif args.smoke:
        rank_counts, mode = SMOKE_RANKS, "smoke"
    else:
        rank_counts, mode = FULL_RANKS, "full"
    if any(n < 4 for n in rank_counts):
        print("error: --ranks entries must be at least 4", file=sys.stderr)
        return 2
    spec = None
    if args.topology is not None:
        if args.topology == "fabric":
            spec = FABRIC_SPEC
        else:
            try:
                spec = TopologySpec.load(args.topology)
            except (OSError, TopologyError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if spec.is_flat:
            print("error: --topology needs a hierarchical spec (flat is the base leg)",
                  file=sys.stderr)
            return 2
    if args.profile:
        nranks = max(rank_counts)
        iters = _cached_iters(nranks)
        model = default_model()
        for booking in ("scalar", "batched"):
            print(f"profile — {booking} booking, {nranks} ranks, {iters} rounds")
            print(profile_drive(nranks, CACHED_CONFIG, model, iters=iters,
                                topology=spec, booking=booking))
        return 0
    results = run_sweep(rank_counts)
    print("simulator throughput — eager vs cached control plane (wall-clock)")
    print(render_table(results))
    check_sweep(results)
    topo_results = None
    if spec is not None:
        topo_results = run_sweep(rank_counts, topology=spec)
        print("with topology — every post resolves a path and binds its ledgers")
        print(render_table(topo_results))
        check_sweep(topo_results)
    if args.output is not None:
        payload = {
            "schema": 1,
            "benchmark": "sim-throughput",
            "mode": mode,
            "halo_degree": HALO_DEGREE,
            "results": {str(n): entry for n, entry in sorted(results.items())},
        }
        if spec is not None and topo_results is not None:
            payload["topology"] = {
                "spec": spec.to_dict(),
                "results": {str(n): entry for n, entry in sorted(topo_results.items())},
            }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.cli`` (returns a process exit code)."""
    args = _build_parser().parse_args(argv)
    if args.command == "measure":
        return _cmd_measure(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "halo":
        return _cmd_halo(args)
    if args.command == "select-table":
        return _cmd_select_table(args)
    if args.command == "topo":
        if args.topo_command == "show":
            return _cmd_topo_show(args)
        raise AssertionError(
            f"unhandled topo command {args.topo_command!r}"
        )  # pragma: no cover
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "bench":
        if args.bench_command == "sim-throughput":
            return _cmd_bench_sim(args)
        raise AssertionError(
            f"unhandled bench command {args.bench_command!r}"
        )  # pragma: no cover
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
