"""Tests for the MessagePlan IR and its compilers."""

import pytest

from repro.gpu.memory import MemoryKind
from repro.gpu.runtime import CudaRuntime
from repro.tempi.config import PackMethod
from repro.tempi.packer import Packer
from repro.tempi.plan import (
    PlanError,
    PlanSection,
    compile_exchange,
    compile_recv,
    compile_send,
    staging_kind,
)
from repro.tempi.strided_block import StridedBlock


def make_packer(block=16, count=32, pitch=64) -> Packer:
    shape = StridedBlock(start=0, counts=(block, count), strides=(1, pitch))
    return Packer(shape, object_extent=(count - 1) * pitch + block)


def make_buffer(nbytes):
    return CudaRuntime().malloc(nbytes)


class TestStagingKind:
    def test_concrete_methods(self):
        assert staging_kind(PackMethod.DEVICE) is MemoryKind.DEVICE
        assert staging_kind(PackMethod.ONESHOT) is MemoryKind.HOST_MAPPED
        assert staging_kind(PackMethod.STAGED) is MemoryKind.DEVICE

    def test_auto_rejected(self):
        with pytest.raises(PlanError):
            staging_kind(PackMethod.AUTO)


class TestCompileSend:
    def test_one_pack_one_post(self):
        packer = make_packer()
        buf = make_buffer(packer.required_input(1))
        plan = compile_send(packer, buf, 1, dest=3, tag=7, method=PackMethod.DEVICE)
        assert plan.op == "send"
        assert plan.tag == 7
        assert not plan.nonblocking
        assert len(plan.pack_stages) == 1 and len(plan.post_stages) == 1
        assert not plan.unpack_stages and plan.local is None
        stage = plan.pack_stages[0]
        assert stage.peer == 3
        assert stage.nbytes == packer.packed_size(1)
        assert stage.staging_key is None  # p2p staging checks out of the pool
        assert plan.post_stages[0].pack is stage
        assert plan.method_counts() == {"device": 1}

    def test_nonblocking_flag_carried(self):
        packer = make_packer()
        buf = make_buffer(packer.required_input(1))
        plan = compile_send(packer, buf, 1, 0, 0, PackMethod.ONESHOT, nonblocking=True)
        assert plan.nonblocking


class TestCompileRecv:
    def test_one_unpack_stage(self):
        packer = make_packer()
        buf = make_buffer(packer.required_input(2))
        plan = compile_recv(packer, buf, 2, source=1, tag=5, method=PackMethod.ONESHOT)
        assert plan.op == "recv"
        assert len(plan.unpack_stages) == 1
        assert not plan.pack_stages and not plan.post_stages
        stage = plan.unpack_stages[0]
        assert stage.peer == 1
        assert stage.nbytes == packer.packed_size(2)
        assert plan.method_counts() == {}  # no wire sends on the receive side


class TestCompileExchange:
    def _sections(self, packer, peers):
        return [
            PlanSection(peer, 1, index * packer.object_extent, packer)
            for index, peer in enumerate(peers)
        ]

    def test_one_stage_triple_per_wire_peer(self):
        packer = make_packer()
        buf = make_buffer(packer.object_extent * 4)
        sections = self._sections(packer, [0, 1, 2, 3])
        selections = []

        def select(p, nbytes, peer=None):
            selections.append(nbytes)
            return PackMethod.DEVICE

        plan = compile_exchange(0, buf, sections, buf, sections, select)
        # rank 0: peers 1..3 on the wire, peer 0 is the local stage pair
        assert [s.peer for s in plan.pack_stages] == [1, 2, 3]
        assert [s.peer for s in plan.unpack_stages] == [1, 2, 3]
        assert plan.local is not None
        local_pack, local_unpack = plan.local
        assert local_pack.peer == 0 and local_unpack.peer == 0
        # one selection per wire peer per side
        assert len(selections) == 6
        assert plan.method_counts() == {"device": 3}
        assert plan.nstages == 3 + 3 + 3 + 2

    def test_staging_keys_follow_role_peer_kind(self):
        packer = make_packer()
        buf = make_buffer(packer.object_extent * 2)
        sections = self._sections(packer, [0, 1])
        plan = compile_exchange(0, buf, sections, buf, sections, lambda p, n, peer=None: PackMethod.ONESHOT)
        assert plan.pack_stages[0].staging_key == (
            "collective", "send", 1, MemoryKind.HOST_MAPPED
        )
        assert plan.unpack_stages[0].staging_key == (
            "collective", "recv", 1, MemoryKind.HOST_MAPPED
        )
        local_pack, local_unpack = plan.local
        assert local_pack.staging_key == ("collective", "send", 0, MemoryKind.DEVICE)
        assert local_unpack.staging_key == ("collective", "recv", 0, MemoryKind.DEVICE)

    def test_zero_count_sections_dropped(self):
        packer = make_packer()
        buf = make_buffer(packer.object_extent * 2)
        sections = [PlanSection(1, 0, 0, packer)]
        plan = compile_exchange(0, buf, sections, buf, sections, lambda p, n, peer=None: PackMethod.DEVICE)
        assert not plan.pack_stages and not plan.unpack_stages and plan.local is None

    def test_duplicate_peers_concatenate_in_order(self):
        packer = make_packer()
        buf = make_buffer(packer.object_extent * 2)
        sections = [
            PlanSection(1, 1, 0, packer),
            PlanSection(1, 1, packer.object_extent, packer),
        ]
        plan = compile_exchange(0, buf, sections, buf, sections, lambda p, n, peer=None: PackMethod.DEVICE)
        assert len(plan.pack_stages) == 1
        stage = plan.pack_stages[0]
        assert len(stage.sections) == 2
        assert stage.nbytes == 2 * packer.packed_size(1)
        assert [s.displ for s in stage.sections] == [0, packer.object_extent]

    def test_mismatched_self_sections_rejected(self):
        packer = make_packer()
        buf = make_buffer(packer.object_extent)
        send = [PlanSection(0, 1, 0, packer)]
        with pytest.raises(PlanError):
            compile_exchange(0, buf, send, buf, [], lambda p, n, peer=None: PackMethod.DEVICE)
