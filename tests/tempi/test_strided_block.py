"""Tests for the StridedBlock lowering (Alg. 5)."""

import pytest

from repro.mpi.constructors import Type_contiguous, Type_create_subarray, Type_vector
from repro.mpi.datatype import BYTE, FLOAT, ORDER_C
from repro.tempi.canonicalize import simplify
from repro.tempi.ir import Type, StreamData, dense, stream
from repro.tempi.strided_block import ObjectShape, StridedBlock, to_strided_block
from repro.tempi.translate import translate


def lower(datatype):
    return to_strided_block(simplify(translate(datatype)))


class TestStridedBlockValidation:
    def test_basic_properties(self):
        block = StridedBlock(start=4, counts=(16, 8, 2), strides=(1, 64, 1024))
        assert block.ndims == 3
        assert block.block_length == 16
        assert block.packed_bytes == 256
        assert block.num_blocks == 16
        assert block.extent == 4 * 0 + (16 - 1) * 1 + 7 * 64 + 1 * 1024 + 1

    def test_contiguous_detection(self):
        assert StridedBlock(0, (128,), (1,)).is_contiguous
        assert not StridedBlock(0, (128, 2), (1, 256)).is_contiguous

    def test_dimension_zero_must_be_unit_stride(self):
        with pytest.raises(ValueError):
            StridedBlock(0, (8, 2), (2, 64))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            StridedBlock(0, (8, 2), (1,))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            StridedBlock(-1, (8,), (1,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StridedBlock(0, (), ())

    def test_footprint_is_tiny(self):
        assert StridedBlock(0, (8, 4, 2), (1, 32, 256)).footprint() == 56


class TestLowering:
    def test_contiguous_type_is_1d(self):
        block = lower(Type_contiguous(64, FLOAT))
        assert block.is_contiguous
        assert block.counts == (256,)

    def test_vector_is_2d(self):
        block = lower(Type_vector(13, 100, 128, FLOAT))
        assert block.counts == (400, 13)
        assert block.strides == (1, 512)
        assert block.start == 0

    def test_subarray_3d(self):
        t = Type_create_subarray(
            [1024, 512, 512], [47, 13, 400], [0, 0, 0], ORDER_C, BYTE
        )
        block = lower(t)
        assert block.counts == (400, 13, 47)
        assert block.strides == (1, 512, 512 * 512)

    def test_offsets_accumulate_into_start(self):
        t = Type_create_subarray([8, 64], [2, 16], [3, 8], ORDER_C, BYTE)
        block = lower(t)
        assert block.start == 3 * 64 + 8

    def test_innermost_dimension_is_contiguous_run(self):
        block = lower(Type_vector(4, 25, 32, FLOAT))
        assert block.strides[0] == 1
        assert block.block_length == 100

    def test_packed_bytes_equals_type_size(self):
        t = Type_create_subarray([16, 8, 64], [7, 3, 24], [2, 1, 8], ORDER_C, BYTE)
        assert lower(t).packed_bytes == t.size

    def test_non_strided_chain_returns_none(self):
        # A chain whose leaf is a stream (never produced by simplify, but the
        # lowering must reject it rather than crash).
        bogus = Type(StreamData(0, 4, 4), Type(StreamData(0, 1, 4), dense(1)))
        bogus.child.child = None
        bogus.child.data = StreamData(0, 1, 4)
        assert to_strided_block(bogus) is None

    def test_stream_below_dense_rejected(self):
        weird = stream(4, 16, stream(2, 4, dense(2)))
        # hand-build an invalid ordering: dense in the middle
        weird.child = Type(dense(4).data, stream(2, 4, dense(2)))
        assert to_strided_block(weird) is None


class TestObjectShape:
    def test_total_bytes(self):
        block = StridedBlock(0, (16, 8), (1, 64))
        shape = ObjectShape(block, count=3, object_extent=1024)
        assert shape.total_bytes == 16 * 8 * 3

    def test_invalid_count_rejected(self):
        block = StridedBlock(0, (16,), (1,))
        with pytest.raises(ValueError):
            ObjectShape(block, count=0)

    def test_negative_extent_rejected(self):
        block = StridedBlock(0, (16,), (1,))
        with pytest.raises(ValueError):
            ObjectShape(block, count=1, object_extent=-1)
