"""TEMPI: the paper's contribution.

This package implements the three contributions of the paper on top of the
simulated substrates:

1. **Canonical datatype handling** (Sec. 3): MPI derived datatypes are
   translated into a small IR (:mod:`repro.tempi.ir`, :mod:`repro.tempi.translate`),
   canonicalised by four fixed-point transformations
   (:mod:`repro.tempi.canonicalize`), lowered to a :class:`~repro.tempi.strided_block.StridedBlock`
   and bound to a parameterised pack kernel (:mod:`repro.tempi.kernels`,
   :mod:`repro.tempi.packer`).
2. **Model-driven method selection** (Sec. 4): a measurement sweep
   (:mod:`repro.tempi.measurement`) feeds an interpolating performance model
   (:mod:`repro.tempi.perf_model`); the unified selection subsystem
   (:mod:`repro.tempi.selection`) picks between the *one-shot*, *device* and
   *staged* send methods (:mod:`repro.tempi.methods`) — contention-free by
   default, or against the live NIC injection-port backlog
   (``TempiConfig(selection="contended")``), with performance models keyed
   per machine by a :class:`~repro.tempi.selection.CalibrationRegistry`.
3. **The interposer** (Sec. 5): :class:`~repro.tempi.interposer.TempiCommunicator`
   exports the same call surface as the system MPI
   (:class:`repro.mpi.communicator.Communicator`), overriding exactly the calls
   TEMPI accelerates and forwarding everything else.

Beyond the paper, the interposer also accelerates the **datatype-carrying
collectives**: ``Alltoallv`` and ``Neighbor_alltoallv`` called with
``sendtypes``/``recvtypes`` pack each destination's sections with one kernel
through the commit-time :class:`~repro.tempi.packer.Packer`, stage them in
per-peer buffers held by the :class:`~repro.tempi.cache.ResourceCache`
(``get_persistent``), and pick *one-shot* / *device* / *staged* per message
from the :class:`~repro.tempi.perf_model.PerformanceModel`
(:func:`repro.tempi.methods.alltoallv_packed`,
:func:`repro.tempi.methods.neighbor_packed`).  Contiguous or uncommitted
datatypes, host buffers and the byte signature fall back to the system path,
counted by :class:`~repro.tempi.interposer.InterposerStats`
(``collective_hits`` / ``collective_fallbacks``).  The halo-exchange
application (:mod:`repro.apps.stencil`, ``mode="neighbor"``) rides this path
instead of its hand-rolled pack/exchange/unpack loops;
``benchmarks/bench_fig13_alltoallv.py`` measures it against the baseline.

Every accelerated operation — blocking or nonblocking — compiles to a
:class:`~repro.tempi.plan.MessagePlan` of typed pack/post/unpack stages and
runs through the :class:`~repro.tempi.executor.PlanExecutor`, which overlaps
pack kernels on per-peer streams with wire time (``TempiConfig.overlap``);
``Isend`` / ``Irecv`` / ``Ialltoallv`` / ``Ineighbor_alltoallv`` return
:class:`~repro.mpi.request.Request` objects whose ``Wait``/``Test`` drive the
deferred receive-side unpacks.  ``benchmarks/bench_fig14_overlap.py`` measures
the overlapped engine against the serial one.
"""

from repro.tempi.canonicalize import canonicalize, simplify
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.executor import PlanExecutor
from repro.tempi.interposer import Tempi, TempiCommunicator
from repro.tempi.ir import DenseData, StreamData, Type
from repro.tempi.measurement import SystemMeasurement, measure_system
from repro.tempi.perf_model import PerformanceModel
from repro.tempi.plan import (
    MessagePlan,
    PackStage,
    PlanError,
    PlanSection,
    PostStage,
    UnpackStage,
    compile_allgather,
    compile_bcast,
    compile_exchange,
    compile_recv,
    compile_send,
)
from repro.tempi.selection import (
    CalibrationRegistry,
    ContendedSelector,
    FixedSelector,
    MethodSelector,
    ModelSelector,
    SelectionError,
    contended_estimate,
    default_registry,
    make_selector,
)
from repro.tempi.progress import PlanWindow, ProgressEngine, ProgressError
from repro.tempi.strided_block import StridedBlock, to_strided_block
from repro.tempi.translate import TranslationError, translate

__all__ = [
    "CalibrationRegistry",
    "ContendedSelector",
    "DenseData",
    "FixedSelector",
    "MessagePlan",
    "MethodSelector",
    "ModelSelector",
    "PackMethod",
    "PackStage",
    "PerformanceModel",
    "PlanError",
    "PlanExecutor",
    "PlanSection",
    "PlanWindow",
    "PostStage",
    "ProgressEngine",
    "ProgressError",
    "SelectionError",
    "StreamData",
    "StridedBlock",
    "SystemMeasurement",
    "Tempi",
    "TempiCommunicator",
    "TempiConfig",
    "TranslationError",
    "Type",
    "UnpackStage",
    "canonicalize",
    "compile_allgather",
    "compile_bcast",
    "compile_exchange",
    "compile_recv",
    "compile_send",
    "contended_estimate",
    "default_registry",
    "make_selector",
    "measure_system",
    "simplify",
    "to_strided_block",
    "translate",
]
