"""Tests for derived-datatype constructors: sizes, extents, layouts, block counts."""

import pytest

from repro.mpi import typemap
from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hindexed,
    Type_create_hvector,
    Type_create_resized,
    Type_create_struct,
    Type_create_subarray,
    Type_indexed,
    Type_vector,
)
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT, INT, ORDER_C, ORDER_FORTRAN
from repro.mpi.errors import MpiTypeError


def blocks(datatype):
    return list(typemap.flatten(datatype))


class TestContiguous:
    def test_size_and_extent(self):
        t = Type_contiguous(10, FLOAT)
        assert t.size == 40
        assert t.extent == 40

    def test_layout_merges_to_one_block(self):
        assert blocks(Type_contiguous(10, FLOAT)) == [(0, 40)]

    def test_block_count_dense(self):
        assert Type_contiguous(10, FLOAT).block_count() == 1

    def test_nested_contiguous(self):
        inner = Type_contiguous(4, FLOAT)
        outer = Type_contiguous(3, inner)
        assert outer.size == 48
        assert blocks(outer) == [(0, 48)]

    def test_contiguous_of_strided_is_not_dense(self):
        strided = Type_vector(2, 1, 4, FLOAT)
        t = Type_contiguous(3, strided)
        assert not t.is_contiguous_bytes
        assert t.block_count() == 3 * strided.block_count()

    def test_invalid_count(self):
        with pytest.raises(MpiTypeError):
            Type_contiguous(0, FLOAT)


class TestVector:
    def test_paper_row_equivalents(self):
        """Sec. 2's row constructions all describe E0 * 4 contiguous bytes."""
        e0 = 100
        constructions = [
            Type_contiguous(e0, FLOAT),
            Type_contiguous(e0 * 4, BYTE),
            Type_vector(1, e0, 1, FLOAT),
            Type_vector(e0, 4, 4, BYTE),
            Type_create_hvector(e0 * 4, 1, 1, BYTE),
        ]
        for t in constructions:
            assert t.size == e0 * 4
            assert blocks(t) == [(0, e0 * 4)]

    def test_strided_vector_layout(self):
        t = Type_vector(3, 2, 4, FLOAT)  # 3 blocks of 8 B, 16 B apart
        assert t.size == 24
        assert t.extent == (2 * 4 + 2) * 4
        assert blocks(t) == [(0, 8), (16, 8), (32, 8)]
        assert t.block_count() == 3

    def test_stride_equal_blocklength_is_contiguous(self):
        t = Type_vector(5, 3, 3, FLOAT)
        assert t.is_contiguous_bytes
        assert t.block_count() == 1

    def test_stride_smaller_than_blocklength_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_vector(3, 4, 2, FLOAT)

    def test_non_positive_stride_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_vector(3, 1, 0, FLOAT)
        with pytest.raises(MpiTypeError):
            Type_vector(3, 1, -2, FLOAT)

    def test_stride_bytes_property(self):
        assert Type_vector(3, 2, 8, FLOAT).stride_bytes == 32


class TestHvector:
    def test_equivalent_to_vector_when_stride_matches(self):
        v = Type_vector(4, 2, 8, FLOAT)
        h = Type_create_hvector(4, 2, 32, FLOAT)
        assert blocks(v) == blocks(h)
        assert v.size == h.size
        assert v.extent == h.extent

    def test_byte_stride_allows_non_multiple_of_extent(self):
        h = Type_create_hvector(2, 1, 10, DOUBLE)
        assert blocks(h) == [(0, 8), (10, 8)]

    def test_overlapping_stride_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_hvector(2, 2, 4, FLOAT)

    def test_block_count(self):
        assert Type_create_hvector(7, 1, 100, DOUBLE).block_count() == 7
        assert Type_create_hvector(7, 1, 8, DOUBLE).block_count() == 1


class TestSubarray:
    def test_2d_c_order(self):
        # 4x8 array of bytes, take rows 1-2, columns 2-5 (C order: last dim fastest).
        t = Type_create_subarray([4, 8], [2, 4], [1, 2], ORDER_C, BYTE)
        assert t.size == 8
        assert t.extent == 32
        assert blocks(t) == [(10, 4), (18, 4)]

    def test_2d_fortran_order(self):
        # Same region but FORTRAN order: first dim fastest.
        t = Type_create_subarray([8, 4], [4, 2], [2, 1], ORDER_FORTRAN, BYTE)
        assert t.size == 8
        assert blocks(t) == [(10, 4), (18, 4)]

    def test_full_coverage_is_contiguous(self):
        t = Type_create_subarray([4, 8], [4, 8], [0, 0], ORDER_C, BYTE)
        assert t.is_contiguous_bytes
        assert t.block_count() == 1

    def test_full_fastest_dimensions_merge(self):
        # The two fastest dims are fully covered, so the partially covered
        # slowest dim's slabs are adjacent and merge into one contiguous run.
        t = Type_create_subarray([4, 3, 8], [2, 3, 8], [1, 0, 0], ORDER_C, BYTE)
        assert t.block_count() == 1
        assert blocks(t) == [(24, 48)]

    def test_partial_middle_dimension_blocks(self):
        # Fastest dim fully covered, middle dim partial: one run per (middle,
        # slow) index pair that cannot merge across the middle dim's holes.
        t = Type_create_subarray([4, 3, 8], [2, 2, 8], [1, 0, 0], ORDER_C, BYTE)
        assert t.block_count() == 2
        assert blocks(t) == [(24, 16), (48, 16)]

    def test_element_type_scaling(self):
        t = Type_create_subarray([4, 8], [2, 4], [0, 0], ORDER_C, FLOAT)
        assert t.size == 8 * 4
        assert t.extent == 32 * 4
        assert blocks(t) == [(0, 16), (32, 16)]

    def test_3d_block_count(self):
        t = Type_create_subarray([8, 8, 64], [4, 4, 16], [0, 0, 0], ORDER_C, BYTE)
        assert t.block_count() == 16
        assert len(blocks(t)) == 16

    def test_out_of_bounds_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_subarray([4], [5], [0], ORDER_C, BYTE)
        with pytest.raises(MpiTypeError):
            Type_create_subarray([4], [2], [3], ORDER_C, BYTE)

    def test_mismatched_dims_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_subarray([4, 4], [2], [0, 0], ORDER_C, BYTE)

    def test_bad_order_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_subarray([4], [2], [0], 7, BYTE)


class TestIndexed:
    def test_layout(self):
        t = Type_indexed([2, 1], [0, 4], FLOAT)
        assert t.size == 12
        assert blocks(t) == [(0, 8), (16, 4)]
        assert t.block_count() == 2

    def test_extent_spans_blocks(self):
        t = Type_indexed([1, 1], [0, 9], FLOAT)
        assert t.extent == 40

    def test_hindexed_displacements_in_bytes(self):
        t = Type_create_hindexed([1, 1], [0, 13], FLOAT)
        assert blocks(t) == [(0, 4), (13, 4)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_indexed([1, 2], [0], FLOAT)

    def test_empty_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_indexed([], [], FLOAT)

    def test_negative_displacement_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_indexed([1], [-1], FLOAT)


class TestStruct:
    def test_mixed_types(self):
        t = Type_create_struct([2, 1], [0, 16], [INT, DOUBLE])
        assert t.size == 16
        assert blocks(t) == [(0, 8), (16, 8)]

    def test_extent(self):
        t = Type_create_struct([1, 1], [0, 32], [INT, DOUBLE])
        assert t.extent == 40

    def test_block_count_counts_contiguous_members_once(self):
        inner = Type_vector(3, 1, 2, FLOAT)
        t = Type_create_struct([1, 1], [0, 100], [INT, inner])
        assert t.block_count() == 1 + inner.block_count()

    def test_length_mismatch_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_struct([1], [0, 8], [INT, DOUBLE])


class TestResized:
    def test_extent_overridden_but_layout_unchanged(self):
        v = Type_vector(2, 1, 4, FLOAT)
        r = Type_create_resized(v, 0, 64)
        assert r.extent == 64
        assert r.size == v.size
        assert blocks(r) == blocks(v)

    def test_consecutive_elements_spaced_by_new_extent(self):
        v = Type_vector(2, 1, 4, FLOAT)
        r = Type_create_resized(v, 0, 64)
        two = list(typemap.flatten_many(r, 2))
        assert (64, 4) in two

    def test_invalid_extent_rejected(self):
        with pytest.raises(MpiTypeError):
            Type_create_resized(FLOAT, 0, 0)
