"""Tests for the analytic halo-exchange model (Fig. 12)."""

import pytest

from repro.apps.exchange_model import (
    ExchangeBreakdown,
    contended_overlap_speedup,
    halo_exchange_speedup,
    model_contended_exchange,
    model_fused_exchange,
    model_halo_exchange,
    model_overlap_exchange,
    overlap_efficiency,
    overlap_speedup,
)
from repro.apps.halo import HaloSpec


class TestBreakdownBasics:
    def test_total_is_sum_of_phases(self):
        breakdown = ExchangeBreakdown(1, 1, 1, 0.1, 0.2, 0.3)
        assert breakdown.total_s == pytest.approx(0.6)

    def test_rank_count(self):
        breakdown = model_halo_exchange(8, 6)
        assert breakdown.nranks == 48
        assert breakdown.nodes == 8
        assert breakdown.ranks_per_node == 6

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            model_halo_exchange(0, 1)
        with pytest.raises(ValueError):
            model_halo_exchange(1, 0)


class TestShapes:
    """The qualitative Fig. 12 trends."""

    def test_baseline_pack_dwarfs_tempi_pack(self):
        baseline = model_halo_exchange(2, 6, tempi=False)
        accelerated = model_halo_exchange(2, 6, tempi=True)
        assert baseline.pack_s / accelerated.pack_s > 100

    def test_comm_phase_identical_between_modes(self):
        baseline = model_halo_exchange(4, 6, tempi=False)
        accelerated = model_halo_exchange(4, 6, tempi=True)
        assert baseline.comm_s == pytest.approx(accelerated.comm_s)

    def test_pack_time_independent_of_rank_count(self):
        """Fig. 12a: per-rank data volume is constant, so pack time is flat."""
        small = model_halo_exchange(1, 6, tempi=True)
        large = model_halo_exchange(64, 6, tempi=True)
        assert small.pack_s == pytest.approx(large.pack_s)

    def test_comm_grows_then_saturates_with_nodes(self):
        one = model_halo_exchange(1, 6, tempi=True)
        eight = model_halo_exchange(8, 6, tempi=True)
        many = model_halo_exchange(64, 6, tempi=True)
        assert eight.comm_s > one.comm_s
        assert many.comm_s >= eight.comm_s

    def test_unpack_slower_than_pack(self):
        breakdown = model_halo_exchange(8, 6, tempi=True)
        assert breakdown.unpack_s > breakdown.pack_s

    def test_speedup_decreases_with_scale(self):
        """Fig. 12b: communication dilutes the datatype-handling win."""
        small = halo_exchange_speedup(1, 1)
        mid = halo_exchange_speedup(8, 6)
        large = halo_exchange_speedup(512, 6)
        assert small > mid >= large

    def test_speedup_order_of_magnitude_matches_paper(self):
        """Paper: ~917x at 3072 ranks, thousands at small scale."""
        large = halo_exchange_speedup(512, 6)
        assert 50 < large < 20000
        small = halo_exchange_speedup(1, 1)
        assert small > large

    def test_smaller_domains_have_smaller_absolute_times(self):
        small_spec = HaloSpec(nx=64, ny=64, nz=64)
        small = model_halo_exchange(8, 6, spec=small_spec, tempi=True)
        paper = model_halo_exchange(8, 6, tempi=True)
        assert small.total_s < paper.total_s


class TestFusedCollectiveModel:
    """Pricing of the fused datatype-carrying collective (mode="neighbor")."""

    def test_fused_cheaper_than_packed_tempi(self):
        """Dropping the MPI_Pack loop (and its per-direction overheads) can
        only help: the fused collective is priced at or below the packed
        TEMPI exchange."""
        packed = model_halo_exchange(8, 6, tempi=True)
        fused = model_fused_exchange(8, 6)
        assert fused.total_s <= packed.total_s * 1.01

    def test_comm_phase_matches_packed_model(self):
        packed = model_halo_exchange(8, 6, tempi=True)
        fused = model_fused_exchange(8, 6)
        assert fused.comm_s == pytest.approx(packed.comm_s)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            model_fused_exchange(0, 1)
        with pytest.raises(ValueError):
            model_overlap_exchange(1, 0)


class TestOverlapPipelineModel:
    """Pricing of the overlapped plan-executor pipeline."""

    def test_phases_partition_the_makespan(self):
        breakdown = model_overlap_exchange(8, 6)
        assert breakdown.pack_s > 0
        assert breakdown.comm_s > 0
        assert breakdown.total_s == pytest.approx(
            breakdown.pack_s + breakdown.comm_s + breakdown.unpack_s
        )

    def test_overlap_wins_when_packs_matter(self):
        """With sizeable packs per peer the pipeline hides them behind the
        wire; the fused serial engine pays them up front."""
        spec = HaloSpec(nx=16, ny=16, nz=16, radius=2, fields=4, bytes_per_field=8)
        assert overlap_speedup(2, 4, spec=spec) > 1.2

    def test_overlap_comm_dominated_at_paper_scale(self):
        """At 512x6 the wire dominates either engine; overlap neither helps
        much nor hurts (the pipeline's last message is undiscounted)."""
        ratio = overlap_speedup(512, 6)
        assert 0.8 < ratio < 1.5

    def test_single_rank_is_all_local(self):
        breakdown = model_overlap_exchange(1, 1)
        assert breakdown.comm_s == 0.0
        assert breakdown.total_s > 0


class TestContendedModel:
    #: Wire-bound configuration: big halos, every peer off-node.
    SPEC = HaloSpec(nx=48, ny=48, nz=48, radius=3, fields=8, bytes_per_field=8)

    def test_single_plan_reduces_to_overlap_model(self):
        contended = model_contended_exchange(8, 1, plans=1, spec=self.SPEC)
        overlap = model_overlap_exchange(8, 1, spec=self.SPEC)
        assert contended.total_s == pytest.approx(overlap.total_s, rel=1e-12)
        assert contended.pack_s == pytest.approx(overlap.pack_s, rel=1e-12)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            model_contended_exchange(0, 1)
        with pytest.raises(ValueError):
            model_contended_exchange(2, 4, plans=0)

    def test_more_plans_cost_more(self):
        totals = [
            model_contended_exchange(8, 1, plans=k, spec=self.SPEC).total_s
            for k in (1, 2, 4)
        ]
        assert totals == sorted(totals)
        # Contended pricing never beats k independent plans stacked end to end.
        assert totals[1] > totals[0]

    def test_shared_nic_prices_above_per_plan(self):
        shared = model_contended_exchange(8, 1, plans=4, spec=self.SPEC)
        per_plan = model_contended_exchange(
            8, 1, plans=4, spec=self.SPEC, shared_nic=False
        )
        assert shared.total_s > per_plan.total_s

    def test_overlap_efficiency_degrades_monotonically(self):
        values = [
            overlap_efficiency(8, 1, plans=k, spec=self.SPEC) for k in (1, 2, 4, 8)
        ]
        assert values[0] == pytest.approx(1.0)
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-9
        assert values[-1] < 0.75  # the port genuinely saturates

    def test_contended_speedup_stays_above_one(self):
        # Even saturated, overlapping still beats the serial engine run k times.
        for k in (1, 2, 4):
            assert contended_overlap_speedup(8, 1, plans=k, spec=self.SPEC) > 1.0


class TestAnalyticMatchesSimulation:
    """The analytic fused/overlap engines against the functional executor.

    One world, 8 ranks on 2 nodes, device method forced so both sides price
    the same transfer path.  The analytic model ignores barriers and a few
    scheduling details, so agreement is asserted within 25%.
    """

    SPEC = HaloSpec(nx=16, ny=16, nz=16, radius=2, fields=4, bytes_per_field=8)

    @pytest.fixture(scope="class")
    def simulated(self, summit_model):
        from repro.apps.stencil import HaloExchange
        from repro.mpi.world import World
        from repro.tempi.config import PackMethod, TempiConfig
        from repro.tempi.interposer import interpose

        def run(overlap):
            config = TempiConfig(overlap=overlap, method=PackMethod.DEVICE)

            def program(ctx):
                comm = interpose(ctx, config, model=summit_model)
                app = HaloExchange(ctx, comm, self.SPEC, mode="neighbor")
                timings = app.run(iterations=2)
                return timings[-1].total_s

            return max(World(8, ranks_per_node=4).run(program))

        return {"serial": run(False), "overlap": run(True)}

    def test_serial_engine_matches_fused_model(self, simulated):
        model = model_fused_exchange(2, 4, spec=self.SPEC).total_s
        assert simulated["serial"] == pytest.approx(model, rel=0.25)

    def test_overlap_engine_matches_pipeline_model(self, simulated):
        model = model_overlap_exchange(2, 4, spec=self.SPEC).total_s
        assert simulated["overlap"] == pytest.approx(model, rel=0.25)

    def test_model_and_simulation_agree_on_the_winner(self, simulated):
        fused = model_fused_exchange(2, 4, spec=self.SPEC).total_s
        overlapped = model_overlap_exchange(2, 4, spec=self.SPEC).total_s
        assert overlapped < fused
        assert simulated["overlap"] < simulated["serial"]


class TestDuplexExchangeModel:
    """model_duplex_exchange / incast_efficiency: the receive-side skew."""

    NBYTES = 1 << 20

    def test_single_sender_is_never_delayed(self):
        from repro.apps.exchange_model import model_duplex_exchange

        duplex = model_duplex_exchange(1, self.NBYTES)
        inject = model_duplex_exchange(1, self.NBYTES, nic="inject_only")
        assert duplex == inject
        assert duplex.ingest_stalled_s == 0.0

    def test_inject_only_completion_is_flat_in_senders(self):
        from repro.apps.exchange_model import model_duplex_exchange

        completions = [
            model_duplex_exchange(n, self.NBYTES, nic="inject_only").completion_s
            for n in (1, 2, 4, 8)
        ]
        assert len(set(completions)) == 1  # idle ports: all arrivals coincide
        assert all(
            model_duplex_exchange(n, self.NBYTES, nic="inject_only").ingest_stalled_s == 0.0
            for n in (2, 8)
        )

    def test_duplex_completion_grows_by_the_port_quantum(self):
        from repro.apps.exchange_model import model_duplex_exchange
        from repro.machine.network import DEFAULT_WIRE_OVERLAP, NetworkModel
        from repro.machine.spec import SUMMIT

        wire = NetworkModel(SUMMIT).message_time(
            self.NBYTES, same_node=False, device_buffers=True
        )
        base = model_duplex_exchange(1, self.NBYTES).completion_s
        for senders in (2, 4, 8):
            breakdown = model_duplex_exchange(senders, self.NBYTES)
            assert breakdown.completion_s == pytest.approx(
                base + (senders - 1) * DEFAULT_WIRE_OVERLAP * wire
            )
            assert breakdown.first_landing_s == pytest.approx(base)

    def test_efficiency_curve_degrades_monotonically(self):
        from repro.apps.exchange_model import incast_efficiency

        values = [incast_efficiency(n, self.NBYTES) for n in (1, 2, 4, 8, 16)]
        assert values[0] == pytest.approx(1.0)
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        from repro.apps.exchange_model import model_duplex_exchange

        with pytest.raises(ValueError):
            model_duplex_exchange(0, self.NBYTES)
        with pytest.raises(ValueError):
            model_duplex_exchange(2, 0)
        with pytest.raises(ValueError):
            model_duplex_exchange(2, self.NBYTES, nic="psychic")

    def test_balanced_walk_is_duplex_invariant(self):
        """The two-sided books leave a *balanced* exchange untouched: the
        mirror arrivals are already spaced by the injection-port rule, so the
        ingestion replay is an exact no-op (bit-for-bit)."""
        for plans in (1, 2, 4):
            duplex = model_contended_exchange(8, 1, plans=plans, nic="duplex")
            inject = model_contended_exchange(8, 1, plans=plans, nic="inject_only")
            assert duplex == inject

    def test_contended_walk_validates_nic(self):
        with pytest.raises(ValueError):
            model_contended_exchange(2, 1, nic="psychic")


class TestSelectedExchangeModel:
    """model_selected_exchange: analytic selection shares the runtime's code."""

    def test_single_plan_contended_equals_model(self, summit_model):
        from repro.apps.exchange_model import model_selected_exchange

        modelled, model_counts = model_selected_exchange(
            2, 6, model=summit_model, plans=1, selection="model"
        )
        contended, contended_counts = model_selected_exchange(
            2, 6, model=summit_model, plans=1, selection="contended"
        )
        assert contended_counts == model_counts
        assert contended.total_s == pytest.approx(modelled.total_s)

    def test_selection_shifts_under_load(self, summit_model):
        from repro.apps.exchange_model import model_selected_exchange

        _, model_counts = model_selected_exchange(
            4, 6, model=summit_model, plans=8, selection="model"
        )
        _, contended_counts = model_selected_exchange(
            4, 6, model=summit_model, plans=8, selection="contended"
        )
        assert contended_counts != model_counts
        # The shift trades device messages for one-shot ones, never new kinds.
        assert set(contended_counts) <= {"device", "oneshot"}

    def test_model_selection_matches_choose_method(self, summit_model):
        """Analytic decisions are literally PerformanceModel.choose_method."""
        from repro.apps.exchange_model import _send_groups, model_selected_exchange
        from repro.apps.halo import HaloSpec, RankGrid

        spec = HaloSpec.paper()
        _, counts = model_selected_exchange(
            2, 6, model=summit_model, plans=1, selection="model", spec=spec
        )
        grid = RankGrid.for_ranks(12)
        expected: dict[str, int] = {}
        worst = None
        # Reproduce the walk's group shapes for one representative rank set;
        # the counts of the worst rank must come from choose_method verbatim.
        for rank in range(min(12, 6)):
            rank_counts: dict[str, int] = {}
            for _, directions in _send_groups(grid, rank).items():
                nbytes = sum(spec.halo_bytes(d) for d in directions)
                block = spec.halo_block_length(directions[0])
                method = summit_model.choose_method(nbytes, block)
                rank_counts[method.value] = rank_counts.get(method.value, 0) + 1
            if rank_counts == counts:
                worst = rank_counts
        assert worst == counts

    def test_invalid_arguments_rejected(self, summit_model):
        from repro.apps.exchange_model import model_selected_exchange

        with pytest.raises(ValueError):
            model_selected_exchange(0, 6, model=summit_model)
        with pytest.raises(ValueError):
            model_selected_exchange(2, 6, model=summit_model, plans=0)
        with pytest.raises(ValueError):
            model_selected_exchange(2, 6, model=summit_model, selection="fixed")
