"""Tests for streams and events."""

import pytest

from repro.gpu.clock import VirtualClock
from repro.gpu.errors import CudaStreamError
from repro.gpu.stream import Event, Stream


class TestStreamOrdering:
    def test_enqueue_serialises_work(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(1e-6)
        stream.enqueue(2e-6)
        assert stream.ready_time == pytest.approx(3e-6)
        assert clock.now == 0.0  # host has not waited yet

    def test_host_overhead_charged_immediately(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(1e-6, host_overhead=4e-6)
        assert clock.now == pytest.approx(4e-6)
        assert stream.ready_time == pytest.approx(5e-6)

    def test_work_starts_after_host_time(self):
        clock = VirtualClock()
        stream = Stream(clock)
        clock.advance(10e-6)
        stream.enqueue(1e-6)
        assert stream.ready_time == pytest.approx(11e-6)

    def test_busy_reflects_outstanding_work(self):
        clock = VirtualClock()
        stream = Stream(clock)
        assert not stream.busy
        stream.enqueue(5e-6)
        assert stream.busy

    def test_negative_duration_rejected(self):
        stream = Stream(VirtualClock())
        with pytest.raises(CudaStreamError):
            stream.enqueue(-1e-6)


class TestSynchronize:
    def test_synchronize_advances_host(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(7e-6)
        stream.synchronize()
        assert clock.now == pytest.approx(7e-6)
        assert not stream.busy

    def test_synchronize_overhead(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(1e-6)
        stream.synchronize(sync_overhead=2e-6)
        assert clock.now == pytest.approx(3e-6)

    def test_synchronize_idle_stream_is_cheap(self):
        clock = VirtualClock()
        Stream(clock).synchronize()
        assert clock.now == 0.0

    def test_destroyed_stream_rejected(self):
        stream = Stream(VirtualClock())
        stream.destroy()
        with pytest.raises(CudaStreamError):
            stream.enqueue(1e-6)
        with pytest.raises(CudaStreamError):
            stream.synchronize()

    def test_operation_counter(self):
        stream = Stream(VirtualClock())
        stream.enqueue(1e-6)
        stream.enqueue(1e-6)
        assert stream.operations == 2


class TestEvents:
    def test_record_captures_stream_time(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(3e-6)
        event = Event(clock)
        event.record(stream)
        assert event.time == pytest.approx(3e-6)

    def test_synchronize_advances_to_event(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(5e-6)
        event = Event(clock)
        event.record(stream)
        event.synchronize()
        assert clock.now == pytest.approx(5e-6)

    def test_query(self):
        clock = VirtualClock()
        stream = Stream(clock)
        stream.enqueue(5e-6)
        event = Event(clock)
        event.record(stream)
        assert not event.query()
        clock.advance(5e-6)
        assert event.query()

    def test_unrecorded_event_rejected(self):
        clock = VirtualClock()
        event = Event(clock)
        with pytest.raises(CudaStreamError):
            event.synchronize()
        with pytest.raises(CudaStreamError):
            event.query()
        with pytest.raises(CudaStreamError):
            Stream(clock).wait_event(event)

    def test_elapsed_time_between_events(self):
        clock = VirtualClock()
        stream = Stream(clock)
        first = Event(clock)
        first.record(stream)
        stream.enqueue(4e-6)
        second = Event(clock)
        second.record(stream)
        assert Event.elapsed_time(first, second) == pytest.approx(4e-6)

    def test_wait_event_orders_streams(self):
        clock = VirtualClock()
        producer = Stream(clock)
        consumer = Stream(clock)
        producer.enqueue(9e-6)
        event = Event(clock)
        event.record(producer)
        consumer.wait_event(event)
        consumer.enqueue(1e-6)
        assert consumer.ready_time == pytest.approx(10e-6)
