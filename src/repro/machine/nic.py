"""The virtual NIC timeline: full-duplex injection/ingestion-port accounting.

Before this module existed, the wire was priced *per plan*: the plan executor
kept a local ``nic_free`` cursor for the duration of one collective, so two
plans in flight at once (two ``Ialltoallv``s, a burst of ``Isend``s) never
contended for the NIC and the simulator over-reported the overlap win exactly
where injection-rate limits should bite.  :class:`NicTimeline` is the shared
ledger that makes the accounting honest — on **both ends of the wire**.

Send side (the PR-3 rules, unchanged and always active):

* every rank owns one **injection port**; all messages a rank injects —
  across plans, across operations — serialise on it at
  :data:`~repro.machine.network.DEFAULT_WIRE_OVERLAP` occupancy (the same
  factor the analytic all-to-all-v model discounts by, so single-plan pricing
  is unchanged)::

      start    = max(ready, port_free[src], link_free[src, dst])
      arrival  = start + wire
      port_free[src]      = start + overlap * wire
      link_free[src, dst] = arrival

* every directed ``(source, destination)`` pair is a **link** on which
  messages serialise *fully*: two messages from one rank to the same peer
  share everything end to end and cannot pipeline the way messages to
  distinct peers can.

Receive side (``TempiConfig(nic="duplex")``): every rank also owns one
**ingestion port**, the mirror of its injection port.  A message whose last
byte would land at ``arrival`` occupies the destination's ingestion port for
the same ``overlap`` fraction of its wire time, aligned at the *start* of its
landing window — so a lone message (or a stream whose arrivals are already
spaced by the sender-side port rule) is never delayed, while an **incast**
(many senders converging on one receiver) queues::

      begin    = max(arrival - wire, ingest_free[dst])
      landing  = begin + wire                      # the delayed arrival
      ingest_free[dst] = begin + overlap * wire

Determinism.  Send-side reservations are **source-scoped**: a rank's
injection timing depends only on its own call order, never on the wall-clock
interleaving of other rank threads.  Receive-side reservations necessarily
mix sources, so they are committed by the *receiving* rank (in its own
program order — deterministic) through :meth:`NicTimeline.ingest`, and every
commit batch is internally ordered by the message key ``(post_time,
source_rank, seq)`` — ``post_time`` being the virtual time the message
entered the wire and ``seq`` a per-source counter — so one plan's receive
set prices identically however the executor threads interleaved the posts.
:meth:`ingest_backlog` additionally exposes an *advisory* view of the
posted-but-not-yet-ingested traffic converging on a rank, which is what the
contention-aware method selector prices a hot peer with.

Topology extension (PR 8).  When a reservation carries a resolved
:class:`~repro.machine.topology.PathSpec`, three further cursor families
join the books, all kept in their own dictionaries so the flat books above
stay byte-identical when no path is given:

* **NIC rails** — ``path.rail`` names a ``(node, rail)`` injection rail the
  node's ranks share; it advances exactly like an injection port
  (``start + overlap * wire``) and joins the start ``max``.  The mirrored
  ``record.rail`` on an :class:`IngestRecord` does the same for the
  receive side.
* **Shared uplink ledgers** — every ``(key, bandwidth)`` entry of
  ``path.shared`` names a leaf switch's uplink bundle.  The message cannot
  start before the bundle frees, and occupies it for its *own* serial time
  on that bundle (``nbytes / bandwidth``) — the per-link reservation
  discipline applied to a shared fabric link, which is what makes incast
  on an oversubscribed uplink structural rather than hand-built.

Shared-hop cursors necessarily mix sources: they are exact when contending
posts carry a happens-before edge (barrier-phased traffic, single-threaded
drivers), and the runtime sanitizer audits cross-rank commits on them the
same way it audits cross-rank backlog reads.

One timeline is shared by all ranks of a :class:`~repro.mpi.world.World`
(it hangs off ``world.nic``); the :class:`~repro.tempi.progress.ProgressEngine`
reserves injection slots and commits ingestion batches on it when
``TempiConfig(progress="shared")`` is active, and skips the receive side
entirely under the ``nic="inject_only"`` ablation (the PR-3/PR-4
accounting, bit-for-bit).
"""

from __future__ import annotations

import threading
from typing import Iterable, NamedTuple, Optional, Sequence

import numpy as np

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.topology import PathSpec, RailKey, ShareKey


class NicError(ValueError):
    """An impossible reservation was requested."""


def ledger_sum(values: Iterable[float], start: float = 0.0) -> float:
    """Fold ``values`` onto ``start``, strictly in the order supplied.

    The ledger helper simlint's SIM005 points at: float addition is not
    associative, so every accumulator total in the ledger/port loops is
    defined as a strict left fold over an *explicitly ordered* sequence.
    This performs the same adds in the same order as an open-coded
    ``total += value`` loop (bit-identical), but keeps the fold in one
    audited place so a future "optimisation" (``math.fsum``, vectorised
    reduction, reordering) cannot silently change priced totals.
    """
    total = start
    for value in values:
        total += value
    return total


class NicReservation(NamedTuple):
    """Outcome of placing one message on the timeline.

    A :class:`~typing.NamedTuple` — reservations are minted once per posted
    message on the simulator's hottest path, and tuples allocate in a single
    step with no per-instance ``__dict__``.
    """

    #: Virtual time the message starts occupying the port (>= ready time).
    start: float
    #: Virtual time the last byte lands at the destination.
    arrival: float
    #: Seconds the message waited on port/link occupancy beyond its ready time.
    stalled_s: float
    #: Serial wire seconds the message occupies (as passed to ``reserve``).
    wire_s: float = 0.0
    #: Per-source sequence number (the deterministic ingestion tie-break).
    seq: int = -1

    @property
    def stalled(self) -> bool:
        """True when NIC contention delayed the injection."""
        return self.stalled_s > 0.0


class LinkRecord(NamedTuple):
    """One ledger entry: a message that occupied a link.

    The timeline itself stores these columnar, in a numpy struct-array ring
    (:class:`_LedgerRing`); this tuple is the row view handed back by
    :meth:`NicTimeline.ledger`.
    """

    source: int
    dest: int
    start: float
    arrival: float
    nbytes: int


class IngestRecord(NamedTuple):
    """One message's receive-side identity: who sent what, entering when.

    ``post_time`` is the virtual time the message entered the wire (the
    injection reservation's ``start``); ``arrival`` the time its last byte
    would land on an idle ingestion port; ``seq`` the sender's per-source
    sequence number.  ``(post_time, source, seq)`` is the deterministic
    cross-rank ordering every ingestion batch is served in — the tuple's own
    field order leads with exactly that triple.
    """

    post_time: float
    source: int
    seq: int
    wire_s: float
    arrival: float
    #: Receive-side ``(node, rail)`` NIC rail the landing also serialises
    #: on (``None`` for a dedicated per-rank NIC — the flat books).
    rail: Optional[RailKey] = None

    @property
    def key(self) -> tuple[float, int, int]:
        """The deterministic ingestion-service order of this message."""
        return (self.post_time, self.source, self.seq)


#: Columnar layout of the bounded reservation ledger: one struct per message,
#: ~40 B, versus a boxed ``LinkRecord`` dataclass plus five boxed fields.
_LEDGER_DTYPE = np.dtype(
    [
        ("source", np.int64),
        ("dest", np.int64),
        ("start", np.float64),
        ("arrival", np.float64),
        ("nbytes", np.int64),
    ]
)


class _LedgerRing:
    """A fixed-capacity numpy struct-array ring of link reservations.

    Appends overwrite the oldest slot in O(1); queries run vectorised over
    the resident window.  Peak residency is therefore ``capacity`` structs,
    however many messages the simulation posts — the compact replacement for
    the old per-message ``deque`` of frozen dataclasses.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, int(capacity))
        self._rows = np.zeros(self.capacity, dtype=_LEDGER_DTYPE)
        self._next = 0
        self._count = 0

    def append(self, source: int, dest: int, start: float, arrival: float, nbytes: int) -> None:
        """Write one reservation, overwriting the oldest beyond capacity."""
        self._rows[self._next] = (source, dest, start, arrival, nbytes)
        nxt = self._next + 1
        self._next = 0 if nxt == self.capacity else nxt
        if self._count < self.capacity:
            self._count += 1

    def _window(self) -> np.ndarray:
        """The resident rows, oldest first (a copy only when wrapped)."""
        if self._count < self.capacity:
            return self._rows[: self._count]
        return np.roll(self._rows, -self._next)

    def in_flight(self, at: float, source: int | None = None) -> int:
        """Messages occupying the wire at virtual time ``at`` (vectorised)."""
        rows = self._rows[: self._count]
        mask = (rows["start"] <= at) & (at < rows["arrival"])
        if source is not None:
            mask &= rows["source"] == source
        return int(np.count_nonzero(mask))

    def records(self, source: int | None = None) -> list[LinkRecord]:
        """Row views of the resident window, oldest first."""
        return [
            LinkRecord(int(r["source"]), int(r["dest"]), float(r["start"]),
                       float(r["arrival"]), int(r["nbytes"]))
            for r in self._window()
            if source is None or int(r["source"]) == source
        ]

    def clear(self) -> None:
        """Forget every resident row."""
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Resident size of the backing array in bytes."""
        return int(self._rows.nbytes)


class NicTimeline:
    """Per-rank injection *and* ingestion ports plus a per-link ledger.

    Thread-safe: ranks run on threads and reserve concurrently.  Each
    injection port is only ever advanced by its owning (sending) rank and
    each ingestion port only by its owning (receiving) rank, so per-rank
    virtual timing stays deterministic; the lock merely keeps the shared
    dictionaries coherent.
    """

    def __init__(
        self,
        *,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        ledger_limit: int = 4096,
        pending_limit: int = 4096,
    ) -> None:
        if not 0 < wire_overlap <= 1:
            raise NicError(f"wire_overlap must be in (0, 1], got {wire_overlap}")
        if ledger_limit < 0:
            raise NicError(f"ledger_limit must be non-negative, got {ledger_limit}")
        if pending_limit < 0:
            raise NicError(f"pending_limit must be non-negative, got {pending_limit}")
        self.wire_overlap = wire_overlap
        self.ledger_limit = ledger_limit
        self.pending_limit = pending_limit
        self._ports: dict[int, float] = {}
        self._links: dict[tuple[int, int], float] = {}
        self._ingest_ports: dict[int, float] = {}
        self._seqs: dict[int, int] = {}
        #: Topology cursors, in their own dictionaries so the flat books
        #: (and their sorted fingerprints) never see topology keys.
        self._rail_ports: dict[RailKey, float] = {}
        self._ingest_rails: dict[RailKey, float] = {}
        self._shared_links: dict[ShareKey, float] = {}
        #: Posted-but-not-yet-ingested messages per destination (advisory:
        #: consumed at ingest time, pruned once drained, bounded).
        self._pending: dict[int, dict[tuple[float, int, int], IngestRecord]] = {}
        self._pending_total = 0
        self._ledger = _LedgerRing(ledger_limit or 1)
        self._lock = threading.Lock()
        self.reservations = 0
        self.stalls = 0
        self.stalled_s = 0.0
        self.ingests = 0
        self.ingest_stalls = 0
        self.ingest_stalled_s = 0.0
        #: Reservations delayed specifically by a shared NIC rail or a
        #: shared uplink bundle (beyond any port/link stall), and by how
        #: much — the structural-congestion signal ``bench_topology.py``
        #: reports.
        self.fabric_stalls = 0
        self.fabric_stalled_s = 0.0
        #: High-water mark of advisory pending records resident at once —
        #: with the bounded ring this is the timeline's whole variable-size
        #: footprint, which ``bench_sim_throughput.py`` reports.
        self.peak_pending = 0

    # ---------------------------------------------------------------- reserve
    def reserve(
        self,
        source: int,
        dest: int,
        ready: float,
        wire_s: float,
        nbytes: int = 0,
        *,
        ingest: bool = True,
        path: Optional[PathSpec] = None,
    ) -> NicReservation:
        """Place one message of ``wire_s`` seconds on the timeline (send side).

        The message starts at the latest of its ``ready`` time, the source's
        injection-port free time and the ``(source, dest)`` link free time.
        The port is occupied for ``wire_overlap * wire_s`` (messages to
        distinct peers pipeline); the link for the full ``wire_s`` (messages
        to the same peer serialise end to end).  The reservation carries the
        per-source ``seq`` that, with its start time, orders the message on
        the destination's ingestion port; ``ingest=False`` (the engine's
        inject-only books) skips the destination's advisory pending ledger —
        a message that will never be ingested must not look like receive-side
        backlog.

        With a resolved ``path`` the message additionally binds the path's
        NIC rail (advanced like a port) and every shared uplink bundle
        (occupied for ``nbytes / bundle bandwidth``, the per-link discipline
        on a shared fabric link); ``path=None`` runs the flat books above,
        byte-identically.  The receive-side mirror rail (``path.ingest_rail``)
        travels on the pending :class:`IngestRecord` and binds at
        :meth:`ingest` time.
        """
        if wire_s < 0:
            raise NicError(f"wire time must be non-negative, got {wire_s}")
        with self._lock:
            port = self._ports.get(source, 0.0)
            link_key = (source, dest)
            link = self._links.get(link_key, 0.0)
            start = max(ready, port, link)
            rail_key: Optional[RailKey] = None
            ingest_rail: Optional[RailKey] = None
            if path is not None:
                base = start
                rail_key = path.rail
                ingest_rail = path.ingest_rail
                if rail_key is not None:
                    start = max(start, self._rail_ports.get(rail_key, 0.0))
                for share_key, _bandwidth in path.shared:
                    start = max(start, self._shared_links.get(share_key, 0.0))
                if start > base:
                    self.fabric_stalls += 1
                    self.fabric_stalled_s += start - base
            arrival = start + wire_s
            self._ports[source] = start + self.wire_overlap * wire_s
            if rail_key is not None:
                self._rail_ports[rail_key] = start + self.wire_overlap * wire_s
            if path is not None:
                for share_key, bandwidth in path.shared:
                    self._shared_links[share_key] = start + nbytes / bandwidth
            self._links[link_key] = arrival
            self.reservations += 1
            seq = self._seqs.get(source, 0)
            self._seqs[source] = seq + 1
            stalled = start - ready
            if stalled > 0:
                self.stalls += 1
                self.stalled_s += stalled
            if self.ledger_limit:
                # The struct-array ring overwrites the oldest row in O(1).
                self._ledger.append(source, dest, start, arrival, int(nbytes))
            if ingest and wire_s > 0 and self.pending_limit:
                self._register_pending(
                    dest,
                    IngestRecord(start, source, seq, wire_s, arrival, ingest_rail),
                )
            return NicReservation(
                start=start,
                arrival=arrival,
                stalled_s=max(0.0, stalled),
                wire_s=wire_s,
                seq=seq,
            )

    def next_seq(self, source: int) -> int:
        """Allocate one per-source sequence number (batched-send envelopes)."""
        with self._lock:
            seq = self._seqs.get(source, 0)
            self._seqs[source] = seq + 1
            return seq

    def _register_pending(self, dest: int, record: IngestRecord) -> None:
        """Track one posted arrival on the (bounded) advisory ledger."""
        pending = self._pending.setdefault(dest, {})
        if record.key not in pending:
            self._pending_total += 1
        pending[record.key] = record
        if len(pending) > self.pending_limit:
            # Drop the earliest-keyed record: it drains first, so losing it
            # only makes the (advisory) backlog estimate conservative.
            del pending[min(pending)]
            self._pending_total -= 1
        if self._pending_total > self.peak_pending:
            self.peak_pending = self._pending_total

    # ----------------------------------------------------------------- ingest
    def ingest(self, dest: int, records: Sequence[IngestRecord]) -> list[float]:
        """Commit one batch of arrivals to ``dest``'s ingestion port.

        The batch is served in the deterministic ``(post_time, source, seq)``
        order whatever order the caller collected the envelopes in; each
        message's landing window is aligned against the port cursor by the
        mirror of the injection rule (see the module docstring), so arrivals
        already spaced by their senders' ports pass through undelayed while
        incast bursts serialise.  Returns the (possibly delayed) landing time
        of each record **in input order**.  Zero-wire records pass through
        untouched.  Called by the receiving rank only — commits happen in
        receiver program order, which keeps the cursor deterministic.
        """
        landings = {record.key: record.arrival for record in records}
        with self._lock:
            port = self._ingest_ports.get(dest, 0.0)
            stalls: list[float] = []
            for record in sorted(
                (r for r in records if r.wire_s > 0), key=lambda r: r.key
            ):
                # landing = begin + wire with begin = max(post_time, port) —
                # written so an undelayed landing equals the arrival
                # *exactly*, and using the true wire-entry time rather than
                # re-deriving it as arrival - wire (no float re-rounding).
                landing = max(record.arrival, port + record.wire_s)
                if record.rail is not None:
                    # The shared receive-side rail mirrors the port rule in
                    # its own cursor; the flat books never reach this branch.
                    rail_port = self._ingest_rails.get(record.rail, 0.0)
                    landing = max(landing, rail_port + record.wire_s)
                    self._ingest_rails[record.rail] = (
                        max(record.post_time, rail_port)
                        + self.wire_overlap * record.wire_s
                    )
                port = max(record.post_time, port) + self.wire_overlap * record.wire_s
                self.ingests += 1
                stalled = landing - record.arrival
                if stalled > 0:
                    self.ingest_stalls += 1
                    stalls.append(stalled)
                landings[record.key] = landing
                if self._pending.get(dest, {}).pop(record.key, None) is not None:
                    self._pending_total -= 1
            # Fold the stall seconds in batch order through the ledger helper
            # — the same adds in the same order as accumulating in the loop.
            self.ingest_stalled_s = ledger_sum(stalls, start=self.ingest_stalled_s)
            self._ingest_ports[dest] = port
            # Receiver-program-order housekeeping (the only deterministic
            # place to prune): pending records that would have fully drained
            # behind the committed cursor were consumed on another path (a
            # system-path receive of a plan-posted message) and can no longer
            # delay anything this port will serve.
            pending = self._pending.get(dest)
            if pending:
                stale = [
                    key
                    for key, record in pending.items()
                    if record.arrival + self.wire_overlap * record.wire_s <= port
                ]
                for key in stale:
                    del pending[key]
                self._pending_total -= len(stale)
        return [landings[record.key] for record in records]

    def ingest_preview(self, dest: int, arrival: float, wire_s: float) -> float:
        """The landing time a message *would* get as the next commit.

        A non-committing read of ``dest``'s ingestion cursor (receiver state
        only, hence deterministic) — the arrival hint ``Test``/``Waitany``
        probes see before the receive actually completes.
        """
        if wire_s <= 0:
            return arrival
        with self._lock:
            port = self._ingest_ports.get(dest, 0.0)
        return max(arrival, port + wire_s)

    # ------------------------------------------------------------- inspection
    def port_free_at(self, rank: int) -> float:
        """Virtual time rank ``rank``'s injection port next frees up."""
        with self._lock:
            return self._ports.get(rank, 0.0)

    def link_free_at(self, source: int, dest: int) -> float:
        """Virtual time the ``(source, dest)`` link next frees up."""
        with self._lock:
            return self._links.get((source, dest), 0.0)

    def rail_free_at(self, rail: RailKey) -> float:
        """Virtual time the shared injection rail ``(node, rail)`` frees up."""
        with self._lock:
            return self._rail_ports.get(rail, 0.0)

    def ingest_rail_free_at(self, rail: RailKey) -> float:
        """Virtual time the shared receive-side rail ``(node, rail)`` frees up."""
        with self._lock:
            return self._ingest_rails.get(rail, 0.0)

    def shared_free_at(self, key: ShareKey) -> float:
        """Virtual time the shared uplink bundle ``key`` frees up.

        A cross-rank read by construction — the bundle is shared fabric —
        so pricing against it is exact only under a happens-before edge to
        the contending posts, exactly like :meth:`ingest_backlog`.
        """
        with self._lock:
            return self._shared_links.get(key, 0.0)

    def ingest_free_at(self, rank: int) -> float:
        """Virtual time rank ``rank``'s ingestion port next frees up.

        Reflects *committed* ingestion only; :meth:`ingest_backlog` folds the
        posted-but-not-yet-ingested traffic in as well.
        """
        with self._lock:
            return self._ingest_ports.get(rank, 0.0)

    def ingest_backlog(self, dest: int, now: float = 0.0) -> float:
        """Seconds of queued ingestion converging on ``dest``, as of ``now``.

        Replays the posted-but-not-yet-ingested arrivals (in key order) over
        the committed ingestion cursor and reports how far past ``now`` the
        port would stay busy.  Only records whose ``post_time`` has passed on
        the caller's clock participate — a rank can only know about traffic
        from its virtual past, which is also what keeps the signal
        reproducible for queries with a happens-before edge to the posts (a
        barrier away).  This is the **advisory** hot-peer signal the
        contention-aware selector prices: exact under that edge, conservative
        when records were capped.  The query is a pure read — pending records
        are consumed at :meth:`ingest` time (receiver program order), never
        by another rank's clock, so concurrent queries cannot disturb each
        other.
        """
        with self._lock:
            port = self._ingest_ports.get(dest, 0.0)
            pending = self._pending.get(dest)
            if pending:
                for key in sorted(pending):
                    record = pending[key]
                    if record.post_time > now:
                        continue
                    begin = max(record.arrival - record.wire_s, port)
                    port = begin + self.wire_overlap * record.wire_s
            return max(0.0, port - now)

    def pending_ingest(self, dest: int) -> int:
        """Posted-but-not-yet-ingested messages for ``dest`` (tests, stats)."""
        with self._lock:
            return len(self._pending.get(dest, {}))

    def pending_records(self, dest: int) -> list[IngestRecord]:
        """Key-ordered snapshot of the advisory pending ledger for ``dest``.

        A pure read over exactly the records :meth:`ingest_backlog` replays —
        the runtime sanitizer walks it to audit cross-rank backlog reads for
        a happens-before edge, and tests introspect it.
        """
        with self._lock:
            pending = self._pending.get(dest)
            if not pending:
                return []
            return [pending[key] for key in sorted(pending)]

    def state_fingerprint(self, rank: Optional[int] = None) -> int:
        """Hash of the priced ledger state, optionally scoped to one rank.

        With ``rank=None`` the digest covers every port/link/sequence cursor
        (including the topology rail and shared-uplink cursors) and the
        occupancy counters.  With a rank it covers only the state that
        rank's *own* calls advance — its injection and ingestion cursors,
        its outgoing links, its sequence counter.  That scope is what the
        runtime sanitizer checksums around selector pricing calls:
        concurrent traffic from other ranks only ever touches *their* keys
        (send side source-scoped, receive side receiver-committed), so the
        rank-scoped digest is immune to scheduling noise while any mutation
        a pricing call leaks onto its own rank's state changes it.  Rail and
        uplink cursors are shared across ranks by construction, so they stay
        out of the rank-scoped digest.
        """
        with self._lock:
            if rank is None:
                return hash(
                    (
                        tuple(sorted(self._ports.items())),
                        tuple(sorted(self._links.items())),
                        tuple(sorted(self._ingest_ports.items())),
                        tuple(sorted(self._seqs.items())),
                        tuple(sorted(self._rail_ports.items())),
                        tuple(sorted(self._ingest_rails.items())),
                        tuple(sorted(self._shared_links.items())),
                        self._pending_total,
                        self.reservations,
                        self.ingests,
                    )
                )
            links = tuple(
                sorted(
                    (key, value)
                    for key, value in self._links.items()
                    if key[0] == rank
                )
            )
            return hash(
                (
                    self._ports.get(rank, 0.0),
                    links,
                    self._ingest_ports.get(rank, 0.0),
                    self._seqs.get(rank, 0),
                )
            )

    def in_flight(self, at: float, *, source: int | None = None) -> int:
        """Ledger query: messages occupying the wire at virtual time ``at``."""
        with self._lock:
            return self._ledger.in_flight(at, source)

    def ledger(self, *, source: int | None = None) -> list[LinkRecord]:
        """A snapshot of the (bounded) reservation ledger, oldest first."""
        with self._lock:
            return self._ledger.records(source)

    def ledger_len(self) -> int:
        """Resident ledger rows (bounded by ``ledger_limit``)."""
        with self._lock:
            return len(self._ledger)

    def ledger_nbytes(self) -> int:
        """Resident bytes of the ledger's backing struct-array ring."""
        with self._lock:
            return self._ledger.nbytes

    # -------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Forget all occupancy (between benchmark repetitions)."""
        with self._lock:
            self._ports.clear()
            self._links.clear()
            self._ingest_ports.clear()
            self._seqs.clear()
            self._rail_ports.clear()
            self._ingest_rails.clear()
            self._shared_links.clear()
            self._pending.clear()
            self._pending_total = 0
            self._ledger.clear()
            self.reservations = 0
            self.stalls = 0
            self.stalled_s = 0.0
            self.ingests = 0
            self.ingest_stalls = 0
            self.ingest_stalled_s = 0.0
            self.fabric_stalls = 0
            self.fabric_stalled_s = 0.0
            self.peak_pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Summarise port/link/counter state for debugging."""
        return (
            f"<NicTimeline ports={len(self._ports)} links={len(self._links)} "
            f"reservations={self.reservations} stalls={self.stalls} "
            f"ingests={self.ingests} ingest_stalls={self.ingest_stalls}>"
        )
