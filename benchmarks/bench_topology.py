"""Topology (beyond the paper): path-class crossovers and the shared uplink.

The paper's selection model (Fig. 9) and our contention extensions price
every wire the same way because the pre-topology machine has one wire.  The
topology subsystem (``machine/topology.py``) resolves each (src, dst) pair
to a typed path — NVLink island, cross-island bridge, NIC rail, leaf/spine
fat-tree — and two consequences follow, each with a functional harness:

* **crossover divergence** — an idle :class:`~repro.tempi.selection.ContendedSelector`
  bound to a hierarchical :class:`~repro.machine.topology.Topology` prices
  the one-shot and device candidates along the *resolved* path of the actual
  peer, so the Fig. 9 one-shot/device crossover is no longer one curve: an
  intra-island peer (NVLink wire) flips to the device method at a smaller
  object size than a cross-switch peer behind an oversubscribed uplink
  (where the device wire's bandwidth edge is squeezed away).  A flat
  topology — and topology-free selection — reproduces the Fig. 9b map
  exactly (cell-for-cell against ``choose_method``).

* **structural incast** — one sender per node on leaf 0 fires one message
  at its counterpart on leaf 1: every flow owns its injection port, NIC
  rail and destination, yet the burst still serialises, because all flows
  share the source leaf's oversubscribed uplink bundle.  The world NIC
  counts one fabric stall per extra flow and its stalled seconds match the
  analytic walk (:func:`repro.apps.exchange_model.model_fabric_exchange`)
  exactly; :func:`repro.apps.exchange_model.uplink_efficiency` is the
  degradation curve as flows or the oversubscription factor grow.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_topology.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_topology.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.apps.exchange_model import model_fabric_exchange, uplink_efficiency
from repro.bench.harness import format_table
from repro.machine.nic import NicTimeline
from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology, TopologySpec
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.selection import ContendedSelector

#: The crossover world: 4 nodes of 4 ranks in two 2-rank NVLink islands,
#: two shared NIC rails per node, two nodes per leaf switch and an 8x
#: oversubscribed spine — every path class is populated.
CROSSOVER_SPEC = TopologySpec(
    ranks_per_node=4, island_size=2, rails_per_node=2,
    leaf_radix=2, oversubscription=8.0,
)
CROSSOVER_RANKS = 16

#: The fabric-incast world: two leaves of 4 two-rank nodes, one shared rail
#: per node, so cross-leaf flows from distinct nodes share *only* the
#: uplink bundle.
FABRIC_RANKS_PER_NODE = 2
FABRIC_LEAF_RADIX = 4


def fabric_spec(oversubscription: float) -> TopologySpec:
    """The fabric-incast shape at one oversubscription factor."""
    return TopologySpec(
        ranks_per_node=FABRIC_RANKS_PER_NODE, rails_per_node=1,
        leaf_radix=FABRIC_LEAF_RADIX, oversubscription=oversubscription,
    )


#: The incast payload (4 MiB packed per flow in 4 KiB runs): wire time
#: dwarfs pack/unpack, so completion isolates the uplink serialisation.
FABRIC = dict(nblocks=1024, block=4096, pitch=8192)

GRID_BLOCKS_SUBSET = (1, 64, 512)
GRID_BLOCKS_FULL = (1, 8, 64, 512)
GRID_SIZES_SUBSET = tuple(1 << p for p in range(8, 23, 2))
GRID_SIZES_FULL = tuple(1 << p for p in range(8, 23))

FLOW_SWEEP_SUBSET = (1, 2, 4)
FLOW_SWEEP_FULL = (1, 2, 3, 4)
OVERSUB_SWEEP_SUBSET = (1.0, 4.0)
OVERSUB_SWEEP_FULL = (1.0, 4.0, 16.0)


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def measurement_packer(size: int, block_length: int):
    """The strided object of one grid cell (the Fig. 9 sweep's shape)."""
    from repro.tempi.packer import Packer
    from repro.tempi.strided_block import StridedBlock

    block_length = min(block_length, size)
    nblocks = size // block_length
    if nblocks <= 1:
        shape = StridedBlock(start=0, counts=(block_length,), strides=(1,))
    else:
        shape = StridedBlock(
            start=0, counts=(block_length, nblocks), strides=(1, 2 * block_length)
        )
    return Packer(shape, object_extent=shape.start + shape.extent)


# --------------------------------------------------------------------------- #
# Crossover divergence (idle selection per resolved path class)
# --------------------------------------------------------------------------- #

def run_crossovers(model, sizes, blocks):
    """Selected method per (block, path class, size) on an idle NIC.

    One :class:`ContendedSelector` per source rank, bound to the hierarchical
    crossover topology; the ``flat`` row is the topology-free idle selection
    (the Fig. 9b map) for comparison.
    """
    topology = Topology(CROSSOVER_RANKS, machine=SUMMIT, spec=CROSSOVER_SPEC)
    pairs = {k: v for k, v in topology.representative_pairs().items() if k != "self"}
    grid: dict[tuple[int, str], dict[int, str]] = {}
    for block in blocks:
        for kind, (src, dst) in pairs.items():
            selector = ContendedSelector(model, NicTimeline(), src, topology=topology)
            grid[(block, kind)] = {
                size: selector(
                    measurement_packer(size, block),
                    measurement_packer(size, block).packed_size(1),
                    peer=dst,
                ).value
                for size in sizes
            }
        grid[(block, "flat")] = {
            size: ContendedSelector(model, NicTimeline(), 0)(
                measurement_packer(size, block),
                measurement_packer(size, block).packed_size(1),
                peer=1,
            ).value
            for size in sizes
        }
    return grid


def crossover_size(row: dict[int, str]):
    """Smallest object size whose selection is the device method, if any."""
    chosen = [size for size, method in sorted(row.items()) if method == "device"]
    return chosen[0] if chosen else None


def check_crossovers(grid, model) -> list[int]:
    """The crossover acceptance claims; returns the diverging blocks."""
    diverging = []
    blocks = sorted({block for block, _ in grid})
    for block in blocks:
        flat = grid[(block, "flat")]
        # The topology-free idle selection is the Fig. 9b map, cell for cell.
        for size, method in flat.items():
            idle = model.choose_method(size, min(block, size)).value
            assert method == idle, (
                f"flat idle selection diverged from choose_method at {size}/{block}"
            )
        island = crossover_size(grid[(block, "island")])
        spine = crossover_size(grid[(block, "spine")])
        assert island is not None, f"block {block}: no island cell ever picked device"
        # Behind the oversubscribed uplink the device wire's bandwidth edge
        # shrinks, so the device method can only win later (or never).
        if spine is None or spine > island:
            diverging.append(block)
        else:
            assert spine >= island, (
                f"block {block}: spine crossover {spine} below island {island}"
            )
    assert diverging, "no block's crossover diverged between island and spine paths"
    return diverging


def render_crossovers(grid, sizes) -> str:
    classes = ("island", "node", "leaf", "spine", "flat")
    rows = []
    for block in sorted({block for block, _ in grid}):
        for kind in classes:
            row = grid.get((block, kind))
            if row is None:
                continue
            cells = "".join("d" if row[size] == "device" else "o" for size in sizes)
            cross = crossover_size(row)
            rows.append(
                [block, kind, cells, cross if cross is not None else "-"]
            )
    return format_table(
        ["block", "path", "o=oneshot d=device (sizes ascending)", "crossover B"], rows
    )


# --------------------------------------------------------------------------- #
# Structural incast (cross-leaf flows sharing one uplink bundle)
# --------------------------------------------------------------------------- #

def measure_fabric(flows: int, oversubscription: float, model, config: TempiConfig):
    """One functional cross-leaf burst; returns fabric-side timings.

    One sender per node on leaf 0 (ranks ``node * ranks_per_node``) fires
    one 4 MiB typed ``Isend`` at its counterpart node on leaf 1; receivers
    post matching ``Irecv``s.  Returns ``(completion_s, fabric_stalls,
    fabric_stalled_s)`` — completion being the latest receiver clock.
    """
    spec = fabric_spec(oversubscription)
    nranks = 2 * spec.leaf_radix * spec.ranks_per_node
    rpn = spec.ranks_per_node
    senders = {node * rpn for node in range(flows)}
    receivers = {(spec.leaf_radix + node) * rpn for node in range(flows)}

    def program(ctx):
        comm = interpose(ctx, config, model=model)
        t = comm.Type_commit(
            Type_vector(FABRIC["nblocks"], FABRIC["block"], FABRIC["pitch"], BYTE)
        )
        buf = ctx.gpu.malloc(t.extent)
        if ctx.rank in senders:
            partner = ctx.rank + spec.leaf_radix * rpn
            comm.Isend((buf, 1, t), dest=partner, tag=ctx.rank).Wait()
            return None
        if ctx.rank in receivers:
            partner = ctx.rank - spec.leaf_radix * rpn
            Request.Waitall([comm.Irecv((buf, 1, t), source=partner, tag=partner)])
            return ctx.clock.now
        return None

    world = World(nranks, ranks_per_node=rpn, topology=spec)
    results = world.run(program)
    completion = max(clock for clock in results if clock is not None)
    return completion, world.nic.fabric_stalls, world.nic.fabric_stalled_s


def run_fabric(flow_counts, oversubs, model):
    """The fabric sweep: functional vs analytic at each (flows, oversub)."""
    nbytes = FABRIC["nblocks"] * FABRIC["block"]
    table = {}
    for oversub in oversubs:
        for flows in flow_counts:
            completion, stalls, stalled = measure_fabric(
                flows, oversub, model, TempiConfig()
            )
            table[(oversub, flows)] = dict(
                completion=completion,
                stalls=stalls,
                stalled_s=stalled,
                analytic=model_fabric_exchange(
                    flows, nbytes, spec=fabric_spec(oversub)
                ),
                efficiency=uplink_efficiency(flows, nbytes, spec=fabric_spec(oversub)),
            )
    return table


def check_fabric(results) -> None:
    """The fabric acceptance claims, shared by pytest and the CLI."""
    previous: dict[float, float] = {}
    for (oversub, flows), row in sorted(results.items()):
        analytic = row["analytic"]
        # Every flow owns its port, rail and destination: the only thing that
        # can lift a reservation is the shared uplink bundle, once per extra
        # flow — and the functional stalled seconds are the analytic walk's.
        assert row["stalls"] == flows - 1, (
            f"oversub {oversub}, {flows} flows: {row['stalls']} fabric stalls "
            f"(expected {flows - 1})"
        )
        assert analytic.fabric_stalls == flows - 1
        assert row["stalled_s"] == pytest.approx(analytic.fabric_stalled_s, rel=1e-9), (
            f"oversub {oversub}, {flows} flows: functional fabric wait "
            f"{row['stalled_s']:.3e}s != analytic {analytic.fabric_stalled_s:.3e}s"
        )
        if flows == 1:
            assert row["efficiency"] == pytest.approx(1.0), (
                "a single flow has no uplink contention"
            )
        else:
            assert row["efficiency"] < previous[oversub], (
                f"oversub {oversub}: uplink efficiency must degrade with flows"
            )
        previous[oversub] = row["efficiency"]
    oversubs = sorted({oversub for oversub, _ in results})
    flow_max = max(flows for _, flows in results)
    if len(oversubs) > 1 and flow_max > 1:
        # Shrinking the bundle (larger oversubscription) slows the same burst.
        lightest, heaviest = oversubs[0], oversubs[-1]
        assert (
            results[(heaviest, flow_max)]["completion"]
            > results[(lightest, flow_max)]["completion"]
        ), "a more oversubscribed uplink must price the burst slower"
        assert (
            results[(heaviest, flow_max)]["efficiency"]
            < results[(lightest, flow_max)]["efficiency"]
        ), "uplink efficiency must degrade with oversubscription"


def render_fabric(results) -> str:
    rows = [
        [
            f"{oversub:g}",
            flows,
            f"{row['completion'] * 1e6:10.1f}",
            f"{row['analytic'].completion_s * 1e6:10.1f}",
            row["stalls"],
            f"{row['stalled_s'] * 1e6:9.1f}",
            f"{row['efficiency']:.3f}",
        ]
        for (oversub, flows), row in sorted(results.items())
    ]
    return format_table(
        ["oversub", "flows", "completion us", "analytic us", "stalls",
         "stalled us", "efficiency"],
        rows,
    )


# --------------------------------------------------------------------------- #
# Harnesses
# --------------------------------------------------------------------------- #

@pytest.mark.benchmark(group="topology")
def test_topology_paths(benchmark, summit_model, report):
    sizes = GRID_SIZES_FULL if full_sweep() else GRID_SIZES_SUBSET
    blocks = GRID_BLOCKS_FULL if full_sweep() else GRID_BLOCKS_SUBSET
    flows = FLOW_SWEEP_FULL if full_sweep() else FLOW_SWEEP_SUBSET
    oversubs = OVERSUB_SWEEP_FULL if full_sweep() else OVERSUB_SWEEP_SUBSET

    def run():
        return (
            run_crossovers(summit_model, sizes, blocks),
            run_fabric(flows, oversubs, summit_model),
        )

    grid, fabric = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTopology — per-path-class crossovers and the shared uplink bundle")
    print(render_crossovers(grid, sizes))
    print(render_fabric(fabric))
    diverging = check_crossovers(grid, summit_model)
    check_fabric(fabric)
    report.add(
        "Topology (beyond paper)",
        "path-class selection crossovers; cross-leaf uplink incast",
        "island/spine crossovers diverge; shared uplink serialises (no paper value)",
        f"{len(diverging)} diverging blocks; efficiency "
        f"{min(row['efficiency'] for row in fabric.values()):.2f} at "
        f"oversub {max(o for o, _ in fabric):g}",
        matches_shape=bool(diverging),
        note="flat spec bit-identical to the pre-topology books (property-pinned)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): coarse grid, 1/2/4 flows",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        sizes, blocks = GRID_SIZES_SUBSET, (64, 512)
        flows, oversubs = (1, 2, 4), (1.0, 4.0)
    else:
        sizes = GRID_SIZES_FULL if full_sweep() else GRID_SIZES_SUBSET
        blocks = GRID_BLOCKS_FULL if full_sweep() else GRID_BLOCKS_SUBSET
        flows = FLOW_SWEEP_FULL if full_sweep() else FLOW_SWEEP_SUBSET
        oversubs = OVERSUB_SWEEP_FULL if full_sweep() else OVERSUB_SWEEP_SUBSET

    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    grid = run_crossovers(model, sizes, blocks)
    fabric = run_fabric(flows, oversubs, model)
    print("Topology — per-path-class crossovers and the shared uplink bundle")
    print(render_crossovers(grid, sizes))
    print(render_fabric(fabric))
    diverging = check_crossovers(grid, model)
    check_fabric(fabric)
    print(
        f"OK: crossover diverged island vs spine at {len(diverging)} block length(s); "
        "fabric stalls and stalled seconds match the analytic walk exactly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
