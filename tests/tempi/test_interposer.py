"""Tests for the TEMPI interposer (Sec. 5)."""

import numpy as np
import pytest

from repro.mpi.constructors import Type_contiguous, Type_indexed, Type_vector
from repro.mpi.datatype import BYTE, FLOAT
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import Tempi, TempiCommunicator, interpose
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel


def vector_type(nblocks=64, block=8, pitch=512):
    return Type_vector(nblocks, block, pitch, BYTE)


@pytest.fixture
def single_rank(summit_model):
    world = World(1)
    ctx = world.contexts[0]
    comm = interpose(ctx, model=summit_model)
    return ctx, comm


class TestTypeCommit:
    def test_strided_type_gets_packer(self, single_rank):
        _, comm = single_rank
        t = comm.Type_commit(vector_type())
        handler = TempiCommunicator.handler_of(t)
        assert handler is not None
        assert handler.accelerated
        assert handler.packer.block.block_length == 8
        assert handler.commit_seconds >= 0.0

    def test_indexed_type_falls_back(self, single_rank):
        _, comm = single_rank
        t = comm.Type_commit(Type_indexed([1, 2], [0, 4], FLOAT))
        handler = TempiCommunicator.handler_of(t)
        assert handler is not None
        assert not handler.accelerated
        assert "block-list" in handler.fallback_reason

    def test_disabled_config_skips_handler(self, summit_model):
        world = World(1)
        comm = interpose(world.contexts[0], TempiConfig.disabled(), model=summit_model)
        t = comm.Type_commit(vector_type())
        assert TempiCommunicator.handler_of(t) is None
        assert t.committed

    def test_commit_counts_recorded(self, single_rank):
        _, comm = single_rank
        comm.Type_commit(vector_type())
        comm.Type_commit(Type_indexed([1], [0], FLOAT))
        assert comm.stats.commits == 2
        assert comm.stats.accelerated_commits == 1

    def test_passthrough_attributes_resolve_in_system_mpi(self, single_rank):
        ctx, comm = single_rank
        assert comm.Get_rank() == 0
        assert comm.Get_size() == 1
        assert comm.system is ctx.comm
        assert comm.gpu is ctx.gpu


class TestPackInterposition:
    def test_pack_uses_kernel_not_per_block_copies(self, single_rank):
        ctx, comm = single_rank
        t = comm.Type_commit(vector_type())
        src = ctx.gpu.malloc(t.extent)
        dst = ctx.gpu.malloc(t.size)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint32).astype(np.uint8)
        kernels_before = ctx.gpu.kernel_launches
        position = comm.Pack((src, 1, t), dst, 0)
        assert position == t.size
        assert ctx.gpu.kernel_launches == kernels_before + 1
        expected = np.concatenate([src.data[i * 512 : i * 512 + 8] for i in range(64)])
        assert np.array_equal(dst.data, expected)

    def test_pack_much_faster_than_baseline(self, summit_model):
        """The headline MPI_Pack speedup of Fig. 8 (orders of magnitude)."""
        def run(use_tempi):
            world = World(1)
            ctx = world.contexts[0]
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            t = comm.Type_commit(Type_vector(16384, 8, 512, BYTE))
            src = ctx.gpu.malloc(t.extent)
            dst = ctx.gpu.malloc(t.size)
            start = ctx.clock.now
            comm.Pack((src, 1, t), dst, 0)
            return ctx.clock.now - start

        baseline = run(False)
        tempi = run(True)
        assert baseline / tempi > 100

    def test_unpack_roundtrip(self, single_rank):
        ctx, comm = single_rank
        t = comm.Type_commit(vector_type(nblocks=16))
        src = ctx.gpu.malloc(t.extent)
        src.data[:] = np.random.default_rng(3).integers(0, 255, src.nbytes, dtype=np.uint8)
        packed = ctx.gpu.malloc(t.size)
        comm.Pack((src, 1, t), packed, 0)
        out = ctx.gpu.malloc(t.extent)
        comm.Unpack(packed, 0, (out, 1, t))
        for i in range(16):
            begin = i * 512
            assert np.array_equal(out.data[begin : begin + 8], src.data[begin : begin + 8])

    def test_host_buffers_fall_back_to_system_mpi(self, single_rank):
        ctx, comm = single_rank
        t = comm.Type_commit(vector_type(nblocks=4))
        src = np.zeros(t.extent, dtype=np.uint8)
        dst = np.zeros(t.size, dtype=np.uint8)
        kernels_before = ctx.gpu.kernel_launches
        comm.Pack((src, 1, t), dst, 0)
        assert ctx.gpu.kernel_launches == kernels_before

    def test_contiguous_types_use_memcpy_path(self, single_rank):
        ctx, comm = single_rank
        t = comm.Type_commit(Type_contiguous(256, BYTE))
        src = ctx.gpu.malloc(256)
        dst = ctx.gpu.malloc(256)
        comm.Pack((src, 1, t), dst, 0)
        assert ctx.gpu.kernel_launches == 0


class TestSendRecvInterposition:
    def _roundtrip(self, summit_model, config=None, nblocks=2048, block=8):
        config = config or TempiConfig()

        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = comm.Type_commit(Type_vector(nblocks, block, 512, BYTE))
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint32).astype(np.uint8)
                start = ctx.clock.now
                comm.Send((buf, 1, t), dest=1)
                return (buf.data.copy(), ctx.clock.now - start, dict(comm.stats.method_counts))
            start = ctx.clock.now
            comm.Recv((buf, 1, t), source=0)
            return (buf.data.copy(), ctx.clock.now - start, dict(comm.stats.method_counts))

        world = World(2, ranks_per_node=1)
        return world.run(program)

    def test_strided_send_correct(self, summit_model):
        (sent, _, _), (received, _, _) = self._roundtrip(summit_model)
        for i in range(2048):
            begin = i * 512
            assert np.array_equal(received[begin : begin + 8], sent[begin : begin + 8])

    def test_auto_selection_records_method(self, summit_model):
        _, (_, _, methods) = self._roundtrip(summit_model)
        assert sum(methods.values()) == 1
        assert set(methods) <= {"oneshot", "device"}

    def test_forced_method_respected(self, summit_model):
        config = TempiConfig(method=PackMethod.DEVICE)
        (_, _, methods), _ = self._roundtrip(summit_model, config)
        assert methods == {"device": 1}

    def test_send_much_faster_than_baseline(self, summit_model):
        """The Fig. 11 claim: TEMPI send latency orders of magnitude below baseline."""

        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            t = comm.Type_commit(Type_vector(2048, 8, 512, BYTE))
            buf = ctx.gpu.malloc(t.extent)
            start = ctx.clock.now
            if ctx.rank == 0:
                comm.Send((buf, 1, t), dest=1)
            else:
                comm.Recv((buf, 1, t), source=0)
            return ctx.clock.now - start

        baseline = World(2, ranks_per_node=1).run(program, False)
        accelerated = World(2, ranks_per_node=1).run(program, True)
        assert max(baseline) / max(accelerated) > 50

    def test_contiguous_datatype_passes_through(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_contiguous(4096, BYTE))
            buf = ctx.gpu.malloc(4096)
            if ctx.rank == 0:
                buf.data[:] = 5
                comm.Send((buf, 1, t), dest=1)
            else:
                comm.Recv((buf, 1, t), source=0)
                assert (buf.data == 5).all()
            return comm.stats.sends

        sends = World(2, ranks_per_node=1).run(program)
        assert sends == [0, 0]  # handled by the system MPI, not TEMPI's send path


class TestOverheadAccounting:
    def test_model_query_overhead_charged(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_vector(128, 8, 512, BYTE))
            buf = ctx.gpu.malloc(t.extent)
            cfg = comm.config
            if ctx.rank == 0:
                first_start = ctx.clock.now
                comm.Send((buf, 1, t), dest=1)
                first = ctx.clock.now - first_start
                second_start = ctx.clock.now
                comm.Send((buf, 1, t), dest=1)
                second = ctx.clock.now - second_start
                # the second send answers the model query from the memo,
                # so it is cheaper by roughly the cold-query difference
                assert second <= first
                return (first, second)
            comm.Recv((buf, 1, t), source=0)
            comm.Recv((buf, 1, t), source=0)
            return None

        World(2, ranks_per_node=1).run(program)

    def test_shared_library_state(self, summit_model):
        world = World(1)
        ctx = world.contexts[0]
        library = Tempi(ctx.gpu, ctx.machine, TempiConfig(), summit_model)
        first = TempiCommunicator(ctx.comm, library=library)
        second = TempiCommunicator(ctx.comm.Dup(), library=library)
        first.Type_commit(vector_type())
        assert second.stats.commits == 1
