"""Property pin: the flat topology books are the pre-topology books, exactly.

``NicTimeline.reserve`` grew a ``path=`` binding for the topology subsystem.
A *flat* spec resolves every pair to a path with no rail keys and no shared
uplinks, so threading those paths through the NIC must be invisible: every
reservation's start/arrival/stall, every ingest landing and the full ledger
fingerprint (which covers the rail and shared-uplink cursor maps) must be
bit-identical to running the same sequence with ``path=None``.  Hypothesis
drives random reservation/ingest sequences through both timelines in
lockstep and compares everything.

A second pin anchors the hierarchical side's conservation law: binding real
paths may only *delay* starts, never accelerate them, and the flat books are
recovered the instant the resolved paths stop carrying rails and uplinks.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.machine.nic import NicTimeline
from repro.machine.topology import Topology, TopologySpec

FLAT_RANKS = 8
FLAT = Topology(FLAT_RANKS, ranks_per_node=2)

HIER = Topology(
    16,
    spec=TopologySpec(
        ranks_per_node=4, island_size=2, rails_per_node=2,
        leaf_radix=2, oversubscription=4.0,
    ),
)


@st.composite
def reservation_sequences(draw, nranks=FLAT_RANKS):
    """A short random program of sends plus interleaved ingest drains."""
    n = draw(st.integers(min_value=1, max_value=24))
    events = []
    for _ in range(n):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = draw(st.integers(min_value=0, max_value=nranks - 1))
        ready = draw(st.floats(min_value=0.0, max_value=1e-3,
                               allow_nan=False, allow_infinity=False))
        wire = draw(st.floats(min_value=0.0, max_value=5e-4,
                              allow_nan=False, allow_infinity=False))
        nbytes = draw(st.sampled_from((0, 4096, 1 << 20)))
        drain = draw(st.booleans())
        events.append((src, dst, ready, wire, nbytes, drain))
    return events


def _run(events, topology, *, bind_paths):
    """Replay one event sequence; returns the full observable trace."""
    nic = NicTimeline()
    pending: dict[int, list] = {}
    trace = []
    for src, dst, ready, wire, nbytes, drain in events:
        path = (
            topology.resolve(src, dst, device_buffers=True) if bind_paths else None
        )
        res = nic.reserve(src, dst, ready, wire, nbytes, path=path)
        trace.append((res.start, res.arrival, res.stalled_s, res.seq))
        if wire > 0:
            pending.setdefault(dst, []).append(
                next(r for r in nic.pending_records(dst) if r.seq == res.seq and r.source == src)
            )
        if drain and pending.get(dst):
            trace.append(tuple(nic.ingest(dst, pending.pop(dst))))
    for dst in sorted(pending):
        trace.append(tuple(nic.ingest(dst, pending.pop(dst))))
    trace.append(nic.state_fingerprint())
    trace.append((nic.stalls, nic.stalled_s, nic.ingest_stalls, nic.ingest_stalled_s,
                  nic.fabric_stalls, nic.fabric_stalled_s))
    return trace


@given(events=reservation_sequences())
@settings(max_examples=60, deadline=None)
def test_flat_paths_are_invisible(events):
    """Flat-spec resolved paths and ``path=None`` book bit-identically."""
    with_paths = _run(events, FLAT, bind_paths=True)
    without = _run(events, FLAT, bind_paths=False)
    assert with_paths == without


@given(events=reservation_sequences(nranks=16))
@settings(max_examples=40, deadline=None)
def test_hierarchical_paths_only_delay(events):
    """Binding real rails/uplinks never starts a message earlier."""
    bound = _run(events, HIER, bind_paths=True)
    free = _run(events, HIER, bind_paths=False)
    for got, base in zip(bound, free):
        if not (isinstance(got, tuple) and len(got) == 4 and isinstance(got[3], int)):
            continue  # only compare the reservation rows
        assert got[0] >= base[0]  # start
        assert got[1] >= base[1]  # arrival
        assert got[3] == base[3]  # per-source sequencing is path-independent
