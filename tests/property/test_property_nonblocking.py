"""Property-based test: Ialltoallv + Waitall equals the blocking paths.

For random strided datatypes and random (consistent) per-pair count matrices,
the interposed nonblocking ``Ialltoallv`` completed by ``Waitall`` must land
exactly the bytes of (a) the interposed blocking ``Alltoallv`` and (b) the
baseline system engine — plan compilation, overlap scheduling and deferred
unpacks may only change *when* things run, never what arrives.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.interposer import interpose


@st.composite
def exchange_cases(draw):
    """A world size, a vector datatype shape, and a consistent count matrix."""
    nranks = draw(st.integers(min_value=1, max_value=4))
    nblocks = draw(st.integers(min_value=1, max_value=6))
    block = draw(st.integers(min_value=1, max_value=8))
    gap = draw(st.integers(min_value=0, max_value=8))  # gap 0: contiguous fallback
    counts = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=2), min_size=nranks, max_size=nranks),
            min_size=nranks,
            max_size=nranks,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, nblocks, block, block + gap, counts, seed


def _run_world(engine, summit_model, nranks, nblocks, block, pitch, counts, seed):
    """engine: "baseline" | "blocking" | "nonblocking"."""

    def program(ctx):
        comm = ctx.comm if engine == "baseline" else interpose(ctx, model=summit_model)
        datatype = comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))
        extent = datatype.extent
        sendcounts = counts[ctx.rank]
        recvcounts = [counts[peer][ctx.rank] for peer in range(ctx.size)]
        senddispls = list(np.cumsum([0] + [c * extent for c in sendcounts[:-1]]).astype(int))
        recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
        send = ctx.gpu.malloc(max(1, sum(sendcounts) * extent))
        recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
        rng = np.random.default_rng(seed + ctx.rank)
        send.data[:] = rng.integers(0, 255, send.nbytes, dtype=np.uint8)
        if engine == "nonblocking":
            request = comm.Ialltoallv(
                send,
                sendcounts,
                senddispls,
                recv,
                recvcounts,
                recvdispls,
                sendtypes=datatype,
                recvtypes=datatype,
            )
            Request.Waitall([request])
        else:
            comm.Alltoallv(
                send,
                sendcounts,
                senddispls,
                recv,
                recvcounts,
                recvdispls,
                sendtypes=datatype,
                recvtypes=datatype,
            )
        return recv.data.copy()

    return World(nranks, ranks_per_node=2).run(program)


@settings(max_examples=25, deadline=None)
@given(exchange_cases())
def test_nonblocking_alltoallv_equals_blocking_and_baseline(summit_model, case):
    nranks, nblocks, block, pitch, counts, seed = case
    baseline = _run_world("baseline", summit_model, nranks, nblocks, block, pitch, counts, seed)
    blocking = _run_world("blocking", summit_model, nranks, nblocks, block, pitch, counts, seed)
    deferred = _run_world("nonblocking", summit_model, nranks, nblocks, block, pitch, counts, seed)
    for rank, (expected, got_blocking, got_deferred) in enumerate(
        zip(baseline, blocking, deferred)
    ):
        assert np.array_equal(expected, got_blocking), (
            f"rank {rank}: blocking TEMPI diverges from baseline for {nranks} ranks, "
            f"vector({nblocks},{block},{pitch})"
        )
        assert np.array_equal(expected, got_deferred), (
            f"rank {rank}: Ialltoallv+Waitall diverges from baseline for {nranks} ranks, "
            f"vector({nblocks},{block},{pitch})"
        )
