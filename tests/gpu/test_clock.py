"""Tests for the virtual clock."""

import pytest

from repro.gpu.clock import ClockError, ClockRegion, VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_advance_by_zero_is_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-1e-9)

    def test_event_counter_increments(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(1.0)
        assert clock.events == 2


class TestAdvanceTo:
    def test_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now == pytest.approx(5.0)

    def test_past_target_is_noop(self):
        clock = VirtualClock()
        clock.advance(10.0)
        clock.advance_to(3.0)
        assert clock.now == pytest.approx(10.0)

    def test_equal_target_is_noop(self):
        clock = VirtualClock()
        clock.advance(2.0)
        events = clock.events
        clock.advance_to(2.0)
        assert clock.events == events

    def test_returns_current_time(self):
        clock = VirtualClock()
        assert clock.advance_to(4.0) == pytest.approx(4.0)


class TestResetAndElapsed:
    def test_reset_to_zero(self):
        clock = VirtualClock()
        clock.advance(9.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.events == 0

    def test_reset_to_value(self):
        clock = VirtualClock()
        clock.reset(2.5)
        assert clock.now == pytest.approx(2.5)

    def test_elapsed_since(self):
        clock = VirtualClock()
        start = clock.now
        clock.advance(1.25)
        assert clock.elapsed_since(start) == pytest.approx(1.25)


class TestClockRegion:
    def test_region_measures_elapsed(self):
        clock = VirtualClock()
        with ClockRegion(clock) as region:
            clock.advance(2e-6)
            clock.advance(3e-6)
        assert region.elapsed == pytest.approx(5e-6)

    def test_region_with_no_work(self):
        clock = VirtualClock()
        with ClockRegion(clock) as region:
            pass
        assert region.elapsed == 0.0

    def test_region_start_recorded(self):
        clock = VirtualClock()
        clock.advance(1.0)
        with ClockRegion(clock) as region:
            clock.advance(1.0)
        assert region.start == pytest.approx(1.0)
