"""Regenerate the golden-figure regression fixtures.

The figure benchmarks are deterministic: simulated latencies derive from
virtual clocks and the shared NIC's arithmetic, never from wall-clock or
thread timing.  This script freezes small sweeps of four of them —
``bench_fig9_selection`` (burst selection), ``bench_fig14_overlap``
(overlap latencies), ``bench_fig15_contention`` (concurrent-plan
contention), ``bench_incast`` (receiver-side ingestion pricing; the
sender flows are symmetric, so the receiver's completion clock and stall
counts are independent of thread scheduling), ``bench_allreduce``
(ring/tree/hierarchical schedule clocks on the fat-tree example) and
``bench_moe`` (skewed dispatch clocks, stalls and payload digests) — into
``tests/fixtures/golden_figures.json``, and
``tests/test_golden_figures.py`` replays them under exact equality every
tier-1 run.  Any change that moves a priced figure value — however small —
fails the replay and must either be a bug or come with a deliberate
fixture regeneration:

    PYTHONPATH=src python tools/make_golden_fixtures.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO / "benchmarks"
FIXTURE = REPO / "tests" / "fixtures" / "golden_figures.json"

#: Small, fast sweep points — regression canaries, not the full figures.
FIG9_SIZES = (4096, 262144)
FIG9_BLOCKS = (8, 512)
FIG9_LOADS = (0, 4)
FIG9_BURSTS = (0, 2)
FIG14_RANKS = (2, 4)
FIG15_PLANS = (1, 2)
INCAST_SENDERS = (1, 2, 4)
ALLREDUCE_NODES = (2, 3)
MOE_SKEWS = (1.0, 4.0)


def build_fixture(model) -> dict:
    """Run the pinned sweeps and shape them into a JSON-native document."""
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_allreduce as allreduce
        import bench_fig9_selection as fig9
        import bench_fig14_overlap as fig14
        import bench_fig15_contention as fig15
        import bench_incast as incast
        import bench_moe as moe
    finally:
        sys.path.remove(str(BENCHMARKS))

    grid = fig9.run_grid(model, FIG9_SIZES, FIG9_BLOCKS, FIG9_LOADS)
    bursts = fig9.run_bursts(FIG9_BURSTS, model)
    overlap = {
        str(nranks): {
            "serial": fig14._exchange_latency(nranks, model, mode="neighbor", overlap=False),
            "overlapped": fig14._exchange_latency(nranks, model, mode="neighbor", overlap=True),
            "packed": fig14._exchange_latency(nranks, model, mode="packed", overlap=True),
            "nonblocking": fig14._exchange_latency(nranks, model, mode="overlap", overlap=True),
        }
        for nranks in FIG14_RANKS
    }
    contention = fig15.run_sweep(FIG15_PLANS, model)
    incasts = {
        str(senders): {
            "duplex": row["duplex"],
            "inject": row["inject"],
            "duplex_stalls": row["duplex_stalls"],
            "analytic": row["analytic"].completion_s,
            "efficiency": row["efficiency"],
        }
        for senders, row in incast.run_incasts(INCAST_SENDERS, model).items()
    }

    allreduces = {
        str(nodes): {
            "ring": row["ring"]["clocks"],
            "tree": row["tree"]["clocks"],
            "hierarchical": row["hierarchical"]["clocks"],
            "auto": row["auto"]["clocks"],
            "digest": row["ring"]["digest"],
            "analytic_speedup": row["analytic_speedup"],
        }
        for nodes, row in allreduce.run_allreduces(ALLREDUCE_NODES, model).items()
    }
    moes = {
        str(skew): {
            "clocks": row["result"].clocks,
            "ingest_stalls": row["result"].rank_ingest_stalls,
            "hot_excess": row["excess"],
            "digests": row["result"].digests,
            "twin_hot_stalled_s": row["twin"].hot_ingest_stalled_s,
            "twin_cold_stalled_s": row["twin"].cold_ingest_stalled_s,
        }
        for skew, row in moe.run_moes(MOE_SKEWS, model).items()
    }

    return {
        "schema": 1,
        "fig9": {
            "grid": {
                f"{size}x{block}": {str(load): method for load, method in cell.items()}
                for (size, block), cell in grid.items()
            },
            "bursts": {str(background): row for background, row in bursts.items()},
        },
        "fig14": overlap,
        "fig15": {str(plans): row for plans, row in contention.items()},
        "incast": incasts,
        "allreduce": allreduces,
        "moe": moes,
    }


def main() -> int:
    from repro.machine.spec import SUMMIT
    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    fixture = build_fixture(model)
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
