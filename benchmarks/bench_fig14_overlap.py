"""Figure 14 (beyond the paper): overlapping pack kernels with wire time.

PR 1's interposed collectives packed every peer's segment, then posted every
message — pack time and wire time added up ("the engine currently packs then
posts per peer serially", as the roadmap put it).  The plan-based engine
compiles the same collective to a :class:`~repro.tempi.plan.MessagePlan` and
executes it overlapped: each peer's pack kernels run on their own stream and
that peer's message enters the NIC the moment its pack completes, so peer
*k+1* packs while peer *k*'s bytes fly.

This harness runs the 26-direction halo exchange at several world sizes and
compares three engines head-to-head on identical plans and identical bytes:

* **serial** — ``TempiConfig(overlap=False)``: the PR-1 schedule;
* **overlap** — ``TempiConfig(overlap=True)``: the pipelined schedule;
* **isend/irecv** — ``mode="overlap"``: the same pipeline built by the
  application out of per-direction ``Isend``/``Irecv``/``Waitall``, the way
  real halo codes hide pack latency.

Set ``REPRO_BENCH_FULL=1`` for the larger grid.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.exchange_model import model_fused_exchange, model_overlap_exchange
from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange
from repro.bench.harness import format_table
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: Per-rank sub-domain: large enough that per-peer packs are worth hiding.
SPEC = HaloSpec(nx=16, ny=16, nz=16, radius=2, fields=4, bytes_per_field=8)

RANK_SWEEP_SUBSET = (2, 4, 8)
RANK_SWEEP_FULL = (2, 4, 8, 12)


def _ranks() -> tuple[int, ...]:
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no"):
        return RANK_SWEEP_FULL
    return RANK_SWEEP_SUBSET


def _exchange_latency(nranks: int, summit_model, *, mode: str, overlap: bool) -> float:
    """Steady-state halo-exchange latency (max over ranks), simulated seconds."""
    config = TempiConfig(overlap=overlap)

    def program(ctx):
        comm = interpose(ctx, config, model=summit_model)
        app = HaloExchange(ctx, comm, SPEC, mode=mode)
        timings = app.run(iterations=2)  # iteration 1 warms staging + queries
        return timings[-1].total_s

    world = World(nranks, ranks_per_node=min(nranks, 4))
    return max(world.run(program))


@pytest.mark.benchmark(group="fig14")
def test_fig14_overlap_sweep(benchmark, summit_model, report):
    def sweep():
        table = {}
        for nranks in _ranks():
            serial = _exchange_latency(nranks, summit_model, mode="neighbor", overlap=False)
            overlapped = _exchange_latency(nranks, summit_model, mode="neighbor", overlap=True)
            packed = _exchange_latency(nranks, summit_model, mode="packed", overlap=True)
            nonblocking = _exchange_latency(nranks, summit_model, mode="overlap", overlap=True)
            table[nranks] = (serial, overlapped, packed, nonblocking)
        return table

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            nranks,
            f"{serial * 1e6:10.1f}",
            f"{overlapped * 1e6:10.1f}",
            f"{packed * 1e6:10.1f}",
            f"{nonblocking * 1e6:10.1f}",
            f"{serial / overlapped:8.2f}x",
        ]
        for nranks, (serial, overlapped, packed, nonblocking) in results.items()
    ]
    print("\nFigure 14 — pack/wire overlap, 26-direction halo exchange (simulated us)")
    print(
        format_table(
            ["ranks", "serial coll", "overlap coll", "pack+a2av", "isend/irecv", "speedup"],
            rows,
        )
    )

    # The acceptance claim: on a multi-peer halo exchange the overlapped
    # engine beats the PR-1 serial engine at every rank count.  The
    # application-level Isend/Irecv pipeline pays one message per *direction*
    # where the collectives pay one per *peer*, so its honest baseline is the
    # structure it replaces in real halo codes — pack everything, exchange,
    # unpack (``mode="packed"``) — which it beats by hiding pack latency.
    for nranks, (serial, overlapped, packed, nonblocking) in results.items():
        assert overlapped < serial, (
            f"overlapped engine slower than serial at {nranks} ranks"
        )
        assert nonblocking < packed, (
            f"Isend/Irecv pipeline slower than pack-then-exchange at {nranks} ranks"
        )

    # The analytic pipeline model agrees on the winner at the matched scale.
    fused = model_fused_exchange(2, 4, spec=SPEC)
    piped = model_overlap_exchange(2, 4, spec=SPEC)
    assert piped.total_s < fused.total_s

    at_8 = results[8]
    report.add(
        "Fig. 14 (beyond paper)",
        "halo exchange, 8 ranks: overlapped vs serial engine",
        "pack kernels hidden behind wire time (no paper value)",
        f"{at_8[0] / at_8[1]:.2f}x",
        matches_shape=all(o < s for s, o, _, _ in results.values()),
        note="plan executor posts each peer at pack completion; PR-1 packed all peers then posted",
    )
