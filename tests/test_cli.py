"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestMeasureCommand:
    def test_writes_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        assert main(["measure", "--output", str(output)]) == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["machine_name"] == "summit-like"
        assert "wrote" in capsys.readouterr().out


class TestPredictCommand:
    def test_predict_from_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        main(["measure", "--output", str(output)])
        code = main(
            ["predict", "--measurement", str(output), "--size", str(1 << 20), "--block", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "T_oneshot" in out and "T_device" in out and "selected method" in out
        assert "device" in out or "oneshot" in out

    def test_small_object_selects_oneshot(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        main(["measure", "--output", str(output)])
        main(["predict", "--measurement", str(output), "--size", "1024", "--block", "8"])
        assert "selected method : oneshot" in capsys.readouterr().out

    def test_invalid_arguments_return_error(self, capsys):
        assert main(["predict", "--size", "0", "--block", "8"]) == 2
        assert "must be positive" in capsys.readouterr().err


class TestHaloCommand:
    def test_paper_scale_point(self, capsys):
        assert main(["halo", "--nodes", "8", "--ranks-per-node", "6"]) == 0
        out = capsys.readouterr().out
        assert "48 ranks" in out
        assert "speedup" in out

    def test_custom_domain(self, capsys):
        assert main(["halo", "--nodes", "2", "--ranks-per-node", "2", "--points", "64"]) == 0
        assert "64^3 points/rank" in capsys.readouterr().out

    def test_invalid_scale_rejected(self, capsys):
        assert main(["halo", "--nodes", "0"]) == 2


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
