"""Tests for the figure workload definitions."""

import pytest

from repro.bench.workloads import (
    DEFAULT_PITCH,
    GEOMETRIES,
    MAX_EXTENT_BYTES,
    Fig8Config,
    fig7_configurations,
    fig8_configurations,
    fig10_configurations,
    fig11_configurations,
    total_configurations,
)
from repro.tempi.canonicalize import simplify
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate


class TestFig7:
    def test_fifteen_configurations(self):
        configs = fig7_configurations()
        assert len(configs) == 15
        assert [c.index for c in configs] == list(range(15))

    def test_five_construction_families(self):
        families = {c.family for c in fig7_configurations()}
        assert len(families) == 5

    def test_all_constructions_describe_their_geometry(self):
        for config in fig7_configurations():
            datatype = config.build()
            assert datatype.size == config.geometry.object_bytes

    def test_equivalent_constructions_share_canonical_form(self):
        by_geometry = {}
        for config in fig7_configurations():
            block = to_strided_block(simplify(translate(config.build())))
            by_geometry.setdefault(config.geometry, set()).add(
                (block.start, block.counts, block.strides)
            )
        assert all(len(forms) == 1 for forms in by_geometry.values())

    def test_geometries_are_consistent(self):
        for geometry in GEOMETRIES:
            assert geometry.e0 * 4 <= geometry.a0
            assert geometry.object_bytes < geometry.alloc_bytes

    def test_labels_unique(self):
        labels = [c.label for c in fig7_configurations()]
        assert len(set(labels)) == len(labels)


class TestFig8:
    def test_seven_bar_groups(self):
        assert len(fig8_configurations()) == 7

    def test_sizes_and_counts_match_figure(self):
        configs = {c.label: c for c in fig8_configurations()}
        assert configs["vec 1KiB 1/8"].object_bytes == 1024
        assert configs["vec 1KiB 1/8"].block_bytes == 8
        assert configs["vec 4MiB 2/1"].count == 2
        assert configs["sub 1KiB 1/8"].kind == "subarray"

    def test_pitch_is_512_for_small_objects(self):
        config = Fig8Config("x", "vector", 1024, 1, 8)
        assert config.pitch == DEFAULT_PITCH

    def test_pitch_shrinks_for_huge_block_counts(self):
        config = Fig8Config("x", "vector", 4 * 1024 * 1024, 1, 1)
        assert config.pitch == 2
        assert config.extent_bytes <= MAX_EXTENT_BYTES

    def test_datatypes_build_and_have_expected_size(self):
        for config in fig8_configurations():
            datatype = config.build()
            assert datatype.size == config.object_bytes

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fig8Config("x", "indexed", 1024, 1, 8).build()

    def test_extent_accounts_for_count(self):
        config = Fig8Config("x", "vector", 1024, 2, 8)
        assert config.extent_bytes >= 2 * (config.nblocks - 1) * config.pitch


class TestFig10And11:
    def test_fig10_grid_dimensions(self):
        grid = fig10_configurations()
        assert len(grid) == 5 * 8
        assert all(block <= size for size, block in grid)

    def test_fig11_group_count(self):
        configs = fig11_configurations()
        assert len(configs) == 27

    def test_fig11_labels(self):
        labels = {c.label for c in fig11_configurations()}
        assert "1KiB/8B" in labels
        assert "4MiB/256B" in labels

    def test_fig11_datatypes_translatable(self):
        for config in fig11_configurations():
            block = to_strided_block(simplify(translate(config.build())))
            assert block is not None
            assert block.packed_bytes == config.object_bytes

    def test_total_configurations_summary(self):
        totals = total_configurations()
        assert totals == {"fig7": 15, "fig8": 7, "fig10": 40, "fig11": 27}
