"""Point-to-point message transport.

The :class:`MessageRouter` is the shared mailbox of one :class:`~repro.mpi.world.World`:
sending ranks post :class:`Envelope` objects, receiving ranks block until a
matching one arrives.  Matching follows MPI rules — ``(source, tag,
communicator)`` with wildcards, FIFO per (source, communicator) pair — and
every envelope carries the *virtual* time at which its payload becomes
available at the destination, so receivers can advance their clocks
consistently regardless of the wall-clock interleaving of the rank threads.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mpi.errors import MpiCommError
from repro.mpi.status import ANY_SOURCE, ANY_TAG


@dataclass
class Envelope:
    """One in-flight message."""

    source: int
    dest: int
    tag: int
    context: int
    payload: np.ndarray
    available_at: float
    device: bool
    sequence: int = field(default=0)
    #: Receive-side NIC identity (duplex accounting): the serial wire seconds
    #: this message occupies, the virtual time it entered the wire, and its
    #: per-source sequence number.  ``wire_s <= 0`` (system-path and serial
    #: -engine messages) opts the envelope out of ingestion-port pricing.
    wire_s: float = field(default=0.0)
    post_time: float = field(default=0.0)
    source_seq: int = field(default=-1)

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)


class MessageRouter:
    """Thread-safe mailbox shared by all ranks of a world."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._mailboxes: dict[int, list[Envelope]] = {rank: [] for rank in range(nranks)}
        self._condition = threading.Condition()
        self._sequence = itertools.count()
        self._shutdown = False
        self.messages_posted = 0

    # ------------------------------------------------------------------- post
    def post(self, envelope: Envelope) -> None:
        """Deliver an envelope to the destination mailbox and wake receivers."""
        if not (0 <= envelope.dest < self.nranks):
            raise MpiCommError(f"destination rank {envelope.dest} outside world of {self.nranks}")
        with self._condition:
            if self._shutdown:
                raise MpiCommError("message posted after world shutdown")
            envelope.sequence = next(self._sequence)
            self._mailboxes[envelope.dest].append(envelope)
            self.messages_posted += 1
            self._condition.notify_all()

    # ------------------------------------------------------------------ match
    @staticmethod
    def _matches(envelope: Envelope, source: int, tag: int, context: int) -> bool:
        if envelope.context != context:
            return False
        if source != ANY_SOURCE and envelope.source != source:
            return False
        if tag != ANY_TAG and envelope.tag != tag:
            return False
        return True

    def _find(self, rank: int, source: int, tag: int, context: int) -> Optional[Envelope]:
        mailbox = self._mailboxes[rank]
        best: Optional[Envelope] = None
        for envelope in mailbox:
            if self._matches(envelope, source, tag, context):
                if best is None or envelope.sequence < best.sequence:
                    best = envelope
        return best

    def receive(
        self,
        rank: int,
        source: int,
        tag: int,
        context: int,
        *,
        timeout: Optional[float] = 120.0,
    ) -> Envelope:
        """Block until a matching envelope is available; remove and return it.

        ``timeout`` bounds the *wall-clock* wait so that a mismatched test
        hangs for two minutes at most instead of forever.
        """
        if not (0 <= rank < self.nranks):
            raise MpiCommError(f"rank {rank} outside world of {self.nranks}")
        with self._condition:
            while True:
                envelope = self._find(rank, source, tag, context)
                if envelope is not None:
                    self._mailboxes[rank].remove(envelope)
                    return envelope
                if self._shutdown:
                    raise MpiCommError("receive after world shutdown")
                if not self._condition.wait(timeout=timeout):
                    raise MpiCommError(
                        f"rank {rank} timed out waiting for a message from source={source} "
                        f"tag={tag} context={context}"
                    )

    def probe(self, rank: int, source: int, tag: int, context: int) -> Optional[Envelope]:
        """Nonblocking check for a matching envelope (not removed)."""
        with self._condition:
            return self._find(rank, source, tag, context)

    # --------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Wake every waiting receiver with an error (world teardown)."""
        with self._condition:
            self._shutdown = True
            self._condition.notify_all()

    def pending(self, rank: int) -> int:
        """Number of undelivered envelopes for a rank (used by tests)."""
        with self._condition:
            return len(self._mailboxes[rank])
