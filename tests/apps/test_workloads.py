"""ML-training workload suite: drivers, analytic twins and the schedule chooser.

Pins the tentpole contracts end to end:

* :func:`repro.tempi.selection.choose_allreduce_algorithm` — the pure
  topology-aware policy behind ``allreduce_algorithm="auto"``;
* the nonblocking ``Iallreduce`` path and the fallback gates;
* the MoE dispatch driver (stamp integrity, determinism, incast signal);
* the pipeline chain driver and its fill/drain shape;
* the analytic twins against the simulated paths — structural agreement
  (orderings, onsets, monotonicity), not absolute-seconds equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.exchange_model import (
    allreduce_hierarchy_speedup,
    model_allreduce,
    model_moe_exchange,
    model_pipeline_chain,
)
from repro.apps.moe import MoESpec, moe_counts, run_moe
from repro.apps.pipeline import PipelineSpec, run_pipeline
from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology, TopologySpec
from repro.mpi.datatype import FLOAT
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.selection import SelectionError, choose_allreduce_algorithm

FATTREE = TopologySpec(
    island_size=2,
    leaf_radix=2,
    oversubscription=8.0,
    rail_policy="island",
    rails_per_node=2,
    ranks_per_node=4,
)


def _fattree_topology(nodes: int) -> Topology:
    return Topology(nodes * FATTREE.ranks_per_node, machine=SUMMIT, spec=FATTREE)


class TestChooseAllreduceAlgorithm:
    def test_explicit_algorithm_always_wins(self):
        topology = _fattree_topology(2)
        for algorithm in ("ring", "tree", "hierarchical"):
            assert choose_allreduce_algorithm(
                8, 1 << 20, topology=topology, algorithm=algorithm
            ) == algorithm

    def test_unknown_algorithm_raises(self):
        with pytest.raises(SelectionError, match="unknown allreduce algorithm 'rabenseifner'"):
            choose_allreduce_algorithm(8, 1024, algorithm="rabenseifner")

    def test_two_ranks_degenerate_to_tree(self):
        assert choose_allreduce_algorithm(2, 1 << 24) == "tree"
        assert choose_allreduce_algorithm(1, 1 << 24) == "tree"

    def test_hierarchical_topology_takes_hierarchical(self):
        topology = _fattree_topology(2)
        assert choose_allreduce_algorithm(8, 1 << 20, topology=topology) == "hierarchical"
        # even below the tree cutoff: the topology term dominates
        assert choose_allreduce_algorithm(8, 1024, topology=topology) == "hierarchical"

    def test_flat_world_splits_on_size(self):
        assert choose_allreduce_algorithm(8, 1024) == "tree"
        assert choose_allreduce_algorithm(8, 1 << 20) == "ring"

    def test_config_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown allreduce algorithm"):
            TempiConfig(allreduce_algorithm="bcast")


def _interposed_allreduce(summit_model, nranks, count, *, nonblocking=False, config=None):
    def program(ctx):
        cfg = config if config is not None else TempiConfig()
        comm = interpose(ctx, cfg, model=summit_model)
        nbytes = count * FLOAT.size
        send = ctx.gpu.malloc(nbytes)
        recv = ctx.gpu.malloc(nbytes)
        values = np.full(count, float(ctx.rank + 1), dtype=np.float32)
        send.data[:nbytes] = values.view(np.uint8)
        if nonblocking:
            request = comm.Iallreduce((send, count, FLOAT), (recv, count, FLOAT))
            request.Wait()
        else:
            comm.Allreduce((send, count, FLOAT), (recv, count, FLOAT))
        stats = comm.stats
        result = recv.data[:nbytes].view(np.float32).copy()
        return ctx.clock.now, result, stats.collective_hits, stats.collective_fallbacks

    return World(nranks, ranks_per_node=2).run(program)


class TestAllreducePaths:
    def test_iallreduce_matches_blocking(self, summit_model):
        blocking = _interposed_allreduce(summit_model, 4, 256)
        nonblocking = _interposed_allreduce(summit_model, 4, 256, nonblocking=True)
        expected = float(sum(range(1, 5)))
        for row in blocking + nonblocking:
            assert np.all(row[1] == expected)
            assert row[2] == 1 and row[3] == 0  # accelerated, no fallback
        assert [row[1].tobytes() for row in blocking] == [
            row[1].tobytes() for row in nonblocking
        ]

    def test_disabled_interposer_falls_back(self, summit_model):
        rows = _interposed_allreduce(
            summit_model, 3, 64, config=TempiConfig(enabled=False)
        )
        expected = float(sum(range(1, 4)))
        for row in rows:
            assert np.all(row[1] == expected)  # fallback still reduces correctly
            assert row[2] == 0


class TestAllreduceTwin:
    def test_twin_agrees_with_simulation_on_fattree_ordering(self, summit_model):
        """Where the simulator prices hierarchical < ring, so does the twin."""
        nodes = 2
        nranks = nodes * FATTREE.ranks_per_node
        count = 4096
        topology = _fattree_topology(nodes)

        def clocks_for(algorithm):
            def program(ctx):
                cfg = TempiConfig(allreduce_algorithm=algorithm, topology=FATTREE)
                comm = interpose(ctx, cfg, model=summit_model)
                nbytes = count * FLOAT.size
                send = ctx.gpu.malloc(nbytes)
                recv = ctx.gpu.malloc(nbytes)
                send.data[:nbytes] = np.full(count, 1.0, np.float32).view(np.uint8)
                comm.Allreduce((send, count, FLOAT), (recv, count, FLOAT))
                return ctx.clock.now

            world = World(nranks, ranks_per_node=FATTREE.ranks_per_node, topology=FATTREE)
            return max(world.run(program))

        sim_ring, sim_hier = clocks_for("ring"), clocks_for("hierarchical")
        twin_ring = model_allreduce(nranks, count, FLOAT.size, algorithm="ring",
                                    topology=topology)
        twin_hier = model_allreduce(nranks, count, FLOAT.size, algorithm="hierarchical",
                                    topology=topology)
        assert sim_hier < sim_ring
        assert twin_hier.completion_s < twin_ring.completion_s
        assert allreduce_hierarchy_speedup(nranks, count, FLOAT.size,
                                           topology=topology) > 1.0

    def test_twin_round_counts_match_schedules(self):
        ring = model_allreduce(4, 1024, 4, algorithm="ring")
        tree = model_allreduce(4, 1024, 4, algorithm="tree")
        assert ring.rounds == 2 * (4 - 1)  # reduce-scatter + allgather
        assert tree.rounds < ring.rounds  # binomial: O(log N) up + down
        assert ring.completion_s > 0 and tree.completion_s > 0

    def test_twin_completion_grows_with_ranks(self):
        completions = [
            model_allreduce(nranks, 4096, 4, algorithm="ring").completion_s
            for nranks in (2, 4, 8)
        ]
        assert completions == sorted(completions)


class TestMoEWorkload:
    def test_counts_conserve_tokens_and_follow_skew(self, moe_seed):
        spec = MoESpec(tokens_per_rank=64, skew=8.0, seed=moe_seed)
        counts = moe_counts(spec, 8)
        assert counts.shape == (8, 8)
        assert np.all(counts.sum(axis=1) == 64)  # every sender routes all tokens
        hot = counts[:, 0].sum()
        cold = counts[:, 1:].sum(axis=0)
        assert hot > cold.max()  # the hot expert wins more than any cold one

    def test_run_moe_verifies_stamps_and_replays_identically(self, summit_model, moe_seed):
        spec = MoESpec(tokens_per_rank=8, token_bytes=4096, skew=4.0, seed=moe_seed)
        first = run_moe(4, spec, model=summit_model, verify=True)
        second = run_moe(4, spec, model=summit_model, verify=True)
        assert first.collective_fallbacks == 0
        assert first.clocks == second.clocks
        assert first.digests == second.digests

    def test_incast_signal_grows_with_skew(self, summit_model, moe_seed):
        def excess(skew):
            spec = MoESpec(tokens_per_rank=16, token_bytes=16384, skew=skew, seed=moe_seed)
            return run_moe(8, spec, model=summit_model).hot_excess_stalls(0)

        assert excess(1.0) < 2.0
        assert excess(4.0) >= 2.0

    def test_twin_onset_agrees(self, moe_seed):
        def twin(skew):
            spec = MoESpec(tokens_per_rank=16, token_bytes=16384, skew=skew, seed=moe_seed)
            return model_moe_exchange(moe_counts(spec, 8), spec.token_bytes)

        uniform, hot = twin(1.0), twin(8.0)
        assert uniform.hot_ingest_stalled_s <= uniform.cold_ingest_stalled_s
        assert hot.hot_ingest_stalled_s > hot.cold_ingest_stalled_s
        assert hot.hot_tokens > uniform.hot_tokens

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="token_bytes must be positive and even"):
            MoESpec(token_bytes=2047)
        with pytest.raises(ValueError, match="skew must be >= 1.0"):
            MoESpec(skew=0.5)
        with pytest.raises(ValueError, match="token_pad must be positive and even"):
            MoESpec(token_pad=0)


class TestPipelineWorkload:
    def test_pipeline_delivers_and_replays_identically(self, summit_model):
        spec = PipelineSpec(microbatches=3, activation_bytes=8192)
        first = run_pipeline(4, spec, model=summit_model)
        second = run_pipeline(4, spec, model=summit_model)
        assert first.clocks == second.clocks
        assert first.digests == second.digests
        # rank 0 stamped the payloads; the sink must hold the same bytes
        assert first.digests[-1] == first.digests[0]

    def test_completion_grows_with_depth_and_microbatches(self, summit_model):
        base = run_pipeline(3, PipelineSpec(microbatches=2), model=summit_model)
        deeper = run_pipeline(5, PipelineSpec(microbatches=2), model=summit_model)
        wider = run_pipeline(3, PipelineSpec(microbatches=6), model=summit_model)
        assert deeper.completion_s > base.completion_s
        assert wider.completion_s > base.completion_s

    def test_twin_shape_matches_simulation(self, summit_model):
        """The twin's fill/steady-state structure orders like the simulator."""
        twin_base = model_pipeline_chain(3, 2, 1 << 16)
        twin_deeper = model_pipeline_chain(5, 2, 1 << 16)
        twin_wider = model_pipeline_chain(3, 6, 1 << 16)
        assert twin_deeper.completion_s > twin_base.completion_s
        assert twin_wider.completion_s > twin_base.completion_s
        assert twin_base.fill_s > 0
        # steady state: adding a microbatch costs less than refilling the pipe
        per_extra = (twin_wider.completion_s - twin_base.completion_s) / 4
        assert per_extra < twin_base.fill_s + twin_base.hop_wire_s

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="microbatches must be positive"):
            PipelineSpec(microbatches=0)
        with pytest.raises(ValueError, match="activation_bytes must be positive and even"):
            PipelineSpec(activation_bytes=1001)
