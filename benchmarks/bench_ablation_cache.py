"""Ablation: the resource cache (Sec. 5).

TEMPI caches streams, intermediate device/pinned buffers and performance-model
queries because acquiring them costs microseconds-to-milliseconds while an
interposed send has a tens-of-microseconds budget.  This ablation runs the
same iterated strided send with the cache enabled and disabled and reports
the per-iteration latency of each, plus the cache hit rate.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, format_us
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

ITERATIONS = 6
OBJECT_BYTES = 256 * 1024
BLOCK_BYTES = 32


def _iterated_send(summit_model, use_cache: bool):
    """Per-iteration send latencies (rank 0's virtual time) and cache hit rate."""

    def program(ctx):
        comm = interpose(ctx, TempiConfig(use_cache=use_cache), model=summit_model)
        nblocks = OBJECT_BYTES // BLOCK_BYTES
        datatype = comm.Type_commit(Type_vector(nblocks, BLOCK_BYTES, 512, BYTE))
        buffer = ctx.gpu.malloc(datatype.extent)
        latencies = []
        for iteration in range(ITERATIONS):
            start = ctx.clock.now
            if ctx.rank == 0:
                comm.Send((buffer, 1, datatype), dest=1, tag=iteration)
            else:
                comm.Recv((buffer, 1, datatype), source=0, tag=iteration)
            latencies.append(ctx.clock.now - start)
        return latencies, comm.tempi.cache.stats.hit_rate()

    world = World(2, ranks_per_node=1)
    results = world.run(program)
    return results[0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_resource_cache(benchmark, summit_model, report):
    def run_both():
        return _iterated_send(summit_model, True), _iterated_send(summit_model, False)

    (cached_latencies, cached_rate), (uncached_latencies, uncached_rate) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    rows = []
    for index, (cached, uncached) in enumerate(zip(cached_latencies, uncached_latencies)):
        rows.append(
            [index, format_us(cached), format_us(uncached), f"{uncached / cached:6.1f}x"]
        )
    print("\nAblation — per-iteration send latency with/without the resource cache (us)")
    print(format_table(["iteration", "cache on", "cache off", "penalty"], rows))
    print(f"cache hit rate: {cached_rate:.0%} (on) vs {uncached_rate:.0%} (off)")

    steady_cached = min(cached_latencies[1:])
    steady_uncached = min(uncached_latencies[1:])
    # Shape claims: the first iteration is expensive either way (cold
    # allocations); with the cache, steady-state iterations shed that cost.
    assert cached_latencies[0] > steady_cached
    assert steady_uncached > steady_cached * 2
    assert cached_rate > 0.5
    assert uncached_rate == 0.0

    report.add(
        "Ablation (resource cache)",
        "steady-state interposed send latency, cache on vs off",
        "amortised to ~ns lookups (Sec. 5)",
        f"{format_us(steady_cached)} us vs {format_us(steady_uncached)} us",
        matches_shape=steady_uncached > steady_cached,
        note=f"cache hit rate {cached_rate:.0%} after warm-up",
    )
