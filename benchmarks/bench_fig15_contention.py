"""Figure 15 (beyond the paper): NIC saturation under concurrent plans.

PR 2 priced the wire per plan: concurrent ``Ialltoallv``s never contended for
the rank's injection port, so the simulator over-reported the overlap win
exactly where injection-rate limits should bite.  The progress engine's
shared :class:`~repro.machine.nic.NicTimeline` fixes that, and this harness
measures what the fix changes: each rank launches *k* concurrent typed
``Ialltoallv`` plans (wire-bound 256 KiB-per-peer messages across nodes) and
the sweep compares three accountings on identical plans and identical bytes:

* **serial** — ``TempiConfig(overlap=False)``: the k exchanges run blocking,
  back-to-back;
* **shared** — ``TempiConfig(progress="shared")`` (the default, duplex NIC):
  the honest two-sided engine; all k plans' messages serialise on the
  injection port and per-peer links *and* land through each receiver's
  ingestion port;
* **inject** — ``TempiConfig(nic="inject_only")``: the PR-3/PR-4 send-side
  books (injection and links, no ingestion);
* **per_plan** — ``TempiConfig(progress="per_plan")``: the PR-2 ablation;
  each plan prices its wire in isolation.

The headline curve is the **overlap efficiency** — the per-plan (uncontended)
time-to-last-arrival over the shared (contended) one.  It is 1.0 at ``k=1``
(where the inject-only books reproduce the PR-2 totals exactly — the shared
duplex engine may already price above them, because an all-to-all whose
ranks walk peers in the same order incasts the low ranks) and degrades
monotonically as the burst saturates the port, which is where the per-plan
accounting's overlap speedup becomes fiction: at ``k≥2`` the honest speedup
over the serial engine is strictly below the per-plan claim.  The analytic
companion is :func:`repro.apps.exchange_model.overlap_efficiency`; the
receive-side skew in isolation is ``bench_incast.py``.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_fig15_contention.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_fig15_contention.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

import pytest

from repro.bench.harness import format_table
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: Wire-bound message shape: 1024 × 256 B blocks = 256 KiB packed per peer
#: per plan, far above the pack-kernel cost at inter-node bandwidth.
VECTOR = dict(nblocks=1024, block=256, pitch=512)

NRANKS = 4  # one rank per node: every wire peer is inter-node
PLAN_SWEEP_SUBSET = (1, 2, 4)
PLAN_SWEEP_FULL = (1, 2, 4, 8)


def _plans() -> tuple[int, ...]:
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no"):
        return PLAN_SWEEP_FULL
    return PLAN_SWEEP_SUBSET


def measure_burst(
    nranks: int,
    plans: int,
    model,
    *,
    progress: str = "shared",
    nic: str = "duplex",
    serial: bool = False,
) -> tuple[float, float]:
    """Run a k-plan burst; returns ``(last_arrival_s, total_s)`` (max over ranks).

    ``last_arrival_s`` is the virtual time from the burst's start until the
    last message of the last plan lands (read through the requests' arrival
    hints, i.e. the quantity the NIC timeline governs); ``total_s`` includes
    the receive-side unpacks.
    """
    config = (
        TempiConfig(overlap=False)
        if serial
        else TempiConfig(progress=progress, nic=nic)
    )

    def program(ctx):
        comm = interpose(ctx, config, model=model)
        datatype = comm.Type_commit(Type_vector(VECTOR["nblocks"], VECTOR["block"], VECTOR["pitch"], BYTE))
        size = comm.Get_size()
        send = ctx.gpu.malloc(datatype.extent * size)
        recvs = [ctx.gpu.malloc(datatype.extent * size) for _ in range(plans)]
        counts = [1] * size
        displs = [peer * datatype.extent for peer in range(size)]

        def exchange(recv, *, blocking: bool) -> Optional[Request]:
            args = (send, counts, displs, recv, counts, displs)
            if blocking:
                comm.Alltoallv(*args, sendtypes=datatype, recvtypes=datatype)
                return None
            return comm.Ialltoallv(*args, sendtypes=datatype, recvtypes=datatype)

        exchange(recvs[0], blocking=False).Wait()  # warm staging + model queries
        comm.Barrier()
        start = ctx.clock.now
        if serial:
            for recv in recvs:
                exchange(recv, blocking=True)
            return ctx.clock.now - start, ctx.clock.now - start
        requests = [exchange(recv, blocking=False) for recv in recvs]
        comm.Barrier()  # wall-clock sync: every rank's sends are now posted
        last_arrival = max(request.arrival_hint() for request in requests) - start
        Request.Waitall(requests)
        return last_arrival, ctx.clock.now - start

    world = World(nranks, ranks_per_node=1)
    results = world.run(program)
    return max(r[0] for r in results), max(r[1] for r in results)


def run_sweep(plan_counts, model, nranks: int = NRANKS) -> dict[int, dict[str, float]]:
    """The Fig. 15 sweep: serial / shared / per_plan at each plan count."""
    table: dict[int, dict[str, float]] = {}
    for plans in plan_counts:
        serial, _ = measure_burst(nranks, plans, model, serial=True)
        shared_arrival, shared_total = measure_burst(nranks, plans, model, progress="shared")
        inject_arrival, inject_total = measure_burst(
            nranks, plans, model, progress="shared", nic="inject_only"
        )
        per_plan_arrival, per_plan_total = measure_burst(nranks, plans, model, progress="per_plan")
        table[plans] = dict(
            serial=serial,
            shared_arrival=shared_arrival,
            shared_total=shared_total,
            inject_arrival=inject_arrival,
            inject_total=inject_total,
            per_plan_arrival=per_plan_arrival,
            per_plan_total=per_plan_total,
            efficiency=per_plan_arrival / shared_arrival,
        )
    return table


def check_sweep(results: dict[int, dict[str, float]]) -> None:
    """The acceptance claims, shared by the pytest harness and the CLI."""
    plan_counts = sorted(results)
    # The inject-only books reproduce the PR-2 numbers where no second plan
    # exists to contend with; the duplex engine may already sit above them
    # (same-order peer walks incast the low ranks even at k=1).
    if 1 in results:
        row = results[1]
        assert abs(row["efficiency"] - 1.0) < 1e-9, "single plan must not contend"
        assert abs(row["inject_total"] - row["per_plan_total"]) < 1e-12
        assert row["shared_total"] >= row["inject_total"] - 1e-12
    previous = None
    for plans in plan_counts:
        row = results[plans]
        # Honest accounting can only delay arrivals, never accelerate them —
        # and pricing both ends of the wire can only add to the send side.
        assert row["shared_arrival"] >= row["inject_arrival"] - 1e-12, (
            f"duplex priced {plans} plans below the inject-only books"
        )
        assert row["inject_arrival"] >= row["per_plan_arrival"] - 1e-12, (
            f"shared NIC priced {plans} plans below the uncontended bound"
        )
        # The overlap win degrades monotonically as the port saturates.
        if previous is not None:
            assert row["efficiency"] <= previous + 1e-9, (
                f"overlap efficiency rose from {previous:.4f} to "
                f"{row['efficiency']:.4f} at {plans} plans"
            )
        previous = row["efficiency"]
        if plans > 1:
            # Under contention the honest overlap speedup sits strictly below
            # the per-plan engine's over-reported one.
            assert row["serial"] / row["shared_total"] < row["serial"] / row["per_plan_total"], (
                f"shared engine not slower than per-plan at {plans} plans"
            )


def render_table(results: dict[int, dict[str, float]]) -> str:
    rows = [
        [
            plans,
            f"{row['serial'] * 1e6:10.1f}",
            f"{row['shared_arrival'] * 1e6:10.1f}",
            f"{row['inject_arrival'] * 1e6:10.1f}",
            f"{row['per_plan_arrival'] * 1e6:10.1f}",
            f"{row['serial'] / row['shared_total']:7.2f}x",
            f"{row['serial'] / row['per_plan_total']:7.2f}x",
            f"{row['efficiency']:10.4f}",
        ]
        for plans, row in sorted(results.items())
    ]
    return format_table(
        [
            "plans",
            "serial us",
            "duplex arr",
            "inject arr",
            "per-plan arr",
            "speedup",
            "claimed",
            "efficiency",
        ],
        rows,
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_contention_sweep(benchmark, summit_model, report):
    results = benchmark.pedantic(
        lambda: run_sweep(_plans(), summit_model), rounds=1, iterations=1
    )
    print("\nFigure 15 — concurrent-plan NIC contention (simulated, virtual us)")
    print(render_table(results))
    check_sweep(results)
    largest = max(results)
    report.add(
        "Fig. 15 (beyond paper)",
        f"{largest} concurrent Ialltoallv plans: overlap efficiency under shared NIC",
        "per-plan overlap win degrades as the injection port saturates (no paper value)",
        f"{results[largest]['efficiency']:.2f}",
        matches_shape=all(
            results[a]["efficiency"] >= results[b]["efficiency"]
            for a, b in zip(sorted(results), sorted(results)[1:])
        ),
        note="progress=per_plan ablation reproduces PR-2 pricing at every plan count",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): 1 and 2 plans on the small world",
    )
    parser.add_argument(
        "--plans",
        type=int,
        nargs="*",
        default=None,
        help="explicit concurrent-plan counts to sweep",
    )
    args = parser.parse_args(argv)
    plan_counts = args.plans if args.plans else ((1, 2) if args.smoke else _plans())

    from repro.machine.spec import SUMMIT
    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    results = run_sweep(plan_counts, model)
    print("Figure 15 — concurrent-plan NIC contention (simulated, virtual us)")
    print(render_table(results))
    check_sweep(results)
    print("OK: overlap efficiency degrades monotonically; per-plan ablation matches at k=1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
