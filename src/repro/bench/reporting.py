"""Paper-vs-measured reporting.

Each benchmark records the quantities the paper reports (speedups, latencies,
crossovers) as :class:`ExperimentRecord` rows in a :class:`ReportCollector`;
the collector can render them as the tables that populate ``EXPERIMENTS.md``.
Records are also written to a JSON file so a benchmark session can be
post-processed without re-running it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.bench.harness import format_table


@dataclass
class ExperimentRecord:
    """One paper-vs-measured comparison row."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    matches_shape: bool
    note: str = ""


@dataclass
class ReportCollector:
    """Accumulates experiment records for one benchmark session."""

    records: list[ExperimentRecord] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper_value: str,
        measured_value: str,
        *,
        matches_shape: bool,
        note: str = "",
    ) -> ExperimentRecord:
        record = ExperimentRecord(
            experiment=experiment,
            quantity=quantity,
            paper_value=paper_value,
            measured_value=measured_value,
            matches_shape=matches_shape,
            note=note,
        )
        self.records.append(record)
        return record

    def for_experiment(self, experiment: str) -> list[ExperimentRecord]:
        return [r for r in self.records if r.experiment == experiment]

    # ------------------------------------------------------------- rendering
    def to_markdown(self) -> str:
        """Render all records as a GitHub-flavoured markdown table."""
        lines = [
            "| Experiment | Quantity | Paper | Measured (simulated) | Shape holds | Note |",
            "|---|---|---|---|---|---|",
        ]
        for record in self.records:
            lines.append(
                f"| {record.experiment} | {record.quantity} | {record.paper_value} | "
                f"{record.measured_value} | {'yes' if record.matches_shape else 'NO'} | "
                f"{record.note} |"
            )
        return "\n".join(lines)

    def to_text(self) -> str:
        """Render all records as a fixed-width text table (printed by benches)."""
        return format_table(
            ["experiment", "quantity", "paper", "measured", "shape"],
            [
                (
                    record.experiment,
                    record.quantity,
                    record.paper_value,
                    record.measured_value,
                    "yes" if record.matches_shape else "NO",
                )
                for record in self.records
            ],
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps([asdict(record) for record in self.records], indent=2))
        return path

    @classmethod
    def load(cls, path: Path | str) -> "ReportCollector":
        records = [ExperimentRecord(**item) for item in json.loads(Path(path).read_text())]
        return cls(records=records)

    def merge(self, others: Iterable["ReportCollector"]) -> "ReportCollector":
        for other in others:
            self.records.extend(other.records)
        return self

    @property
    def all_shapes_hold(self) -> bool:
        """True when every recorded comparison preserved the paper's shape."""
        return all(record.matches_shape for record in self.records)


#: Module-level collector the benchmark modules share within one pytest run.
GLOBAL_REPORT = ReportCollector()


def global_report() -> ReportCollector:
    """The shared collector (one per pytest session)."""
    return GLOBAL_REPORT


def save_global_report(path: Optional[Path | str] = None) -> Optional[Path]:
    """Persist the shared collector if it has any records."""
    if not GLOBAL_REPORT.records:
        return None
    target = Path(path) if path is not None else Path("bench_report.json")
    return GLOBAL_REPORT.save(target)
