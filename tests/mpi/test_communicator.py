"""Tests for the Communicator: buffer specs, sends/receives, pack, requests."""

import numpy as np
import pytest

from repro.gpu.memory import MemoryKind
from repro.mpi.constructors import Type_contiguous, Type_vector
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT
from repro.mpi.errors import MpiArgumentError, MpiRankError, MpiTruncationError
from repro.mpi.status import Status
from repro.mpi.world import World
from repro.mpi.communicator import as_buffer


@pytest.fixture
def world2():
    return World(2, ranks_per_node=1)


@pytest.fixture
def world4():
    return World(4, ranks_per_node=2)


class TestBufferResolution:
    def test_plain_buffer_is_bytes(self):
        world = World(1)
        comm = world.contexts[0].comm
        buf = world.contexts[0].gpu.malloc(64)
        buffer, count, datatype = comm._resolve(buf)
        assert buffer is buf
        assert count == 64
        assert datatype is BYTE

    def test_ndarray_wrapped_as_host_buffer(self):
        world = World(1)
        comm = world.contexts[0].comm
        arr = np.zeros(10, dtype=np.float64)
        buffer, count, datatype = comm._resolve(arr)
        assert not buffer.is_device
        assert count == 80
        # the wrapper shares memory with the array
        buffer.data[:8] = 255
        assert arr[0] != 0.0

    def test_two_tuple_infers_count(self):
        world = World(1)
        comm = world.contexts[0].comm
        buf = world.contexts[0].gpu.malloc(64)
        _, count, datatype = comm._resolve((buf, DOUBLE))
        assert count == 8
        assert datatype is DOUBLE

    def test_three_tuple_explicit(self):
        world = World(1)
        comm = world.contexts[0].comm
        buf = world.contexts[0].gpu.malloc(64)
        _, count, datatype = comm._resolve((buf, 3, DOUBLE))
        assert count == 3

    def test_invalid_specs_rejected(self):
        world = World(1)
        comm = world.contexts[0].comm
        buf = world.contexts[0].gpu.malloc(8)
        with pytest.raises(MpiArgumentError):
            comm._resolve((buf, "DOUBLE"))
        with pytest.raises(MpiArgumentError):
            comm._resolve((buf, 0, DOUBLE))
        with pytest.raises(MpiArgumentError):
            comm._resolve(42)

    def test_as_buffer_rejects_strings(self):
        with pytest.raises(MpiArgumentError):
            as_buffer("hello")


class TestBlockingSendRecv:
    def test_bytes_arrive(self, world2):
        def program(ctx):
            buf = ctx.gpu.malloc(128)
            if ctx.rank == 0:
                buf.data[:] = 42
                ctx.comm.Send(buf, dest=1, tag=3)
            else:
                status = ctx.comm.Recv(buf, source=0, tag=3)
                assert (buf.data == 42).all()
                assert status.Get_source() == 0
                assert status.Get_tag() == 3
                assert status.Get_count() == 128

        world2.run(program)

    def test_host_arrays_work_directly(self, world2):
        def program(ctx):
            data = np.full(16, ctx.rank, dtype=np.int32)
            if ctx.rank == 0:
                ctx.comm.Send(data, dest=1)
            else:
                ctx.comm.Recv(data, source=0)
                assert (data == 0).all()

        world2.run(program)

    def test_derived_type_send_lands_strided(self, world2):
        def program(ctx):
            t = Type_vector(4, 8, 32, BYTE).Commit()
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint16).astype(np.uint8)
                ctx.comm.Send((buf, 1, t), dest=1)
                return buf.data.copy()
            ctx.comm.Recv((buf, 1, t), source=0)
            return buf.data.copy()

        sent, received = world2.run(program)
        for i in range(4):
            start = i * 32
            assert np.array_equal(received[start : start + 8], sent[start : start + 8])

    def test_truncation_detected(self, world2):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(ctx.gpu.malloc(64), dest=1)
            else:
                with pytest.raises(MpiTruncationError):
                    ctx.comm.Recv(ctx.gpu.malloc(32), source=0)

        world2.run(program)

    def test_clock_advances_by_message_time(self, world2):
        def program(ctx):
            nbytes = 1 << 16
            buf = ctx.gpu.host_alloc(nbytes, MemoryKind.HOST_PINNED)
            before = ctx.clock.now
            if ctx.rank == 0:
                ctx.comm.Send(buf, dest=1)
                return ctx.clock.now - before
            ctx.comm.Recv(buf, source=0)
            return ctx.clock.now - before

        sender_elapsed, receiver_elapsed = world2.run(program)
        expected = world2.network.message_time(1 << 16, same_node=False, device_buffers=False)
        assert sender_elapsed == pytest.approx(expected)
        assert receiver_elapsed >= expected

    def test_device_buffers_cost_more_than_host(self, world2):
        def program(ctx, device):
            nbytes = 4096
            buf = (
                ctx.gpu.malloc(nbytes)
                if device
                else ctx.gpu.host_alloc(nbytes, MemoryKind.HOST_PINNED)
            )
            start = ctx.clock.now
            if ctx.rank == 0:
                ctx.comm.Send(buf, dest=1)
            else:
                ctx.comm.Recv(buf, source=0)
            return ctx.clock.now - start

        host_times = world2.run(program, False)
        world2.reset_clocks()
        device_times = World(2, ranks_per_node=1).run(program, True)
        assert device_times[0] > host_times[0]

    def test_invalid_peer_rejected(self, world2):
        def program(ctx):
            with pytest.raises(MpiRankError):
                ctx.comm.Send(ctx.gpu.malloc(8), dest=7)
            return True

        assert all(world2.run(program))


class TestNonblocking:
    def test_isend_irecv_roundtrip(self, world2):
        def program(ctx):
            buf = ctx.gpu.malloc(64)
            if ctx.rank == 0:
                buf.data[:] = 9
                request = ctx.comm.Isend(buf, dest=1, tag=1)
                request.Wait()
            else:
                request = ctx.comm.Irecv(buf, source=0, tag=1)
                status = request.Wait()
                assert status.Get_count() == 64
                assert (buf.data == 9).all()

        world2.run(program)

    def test_sendrecv_exchanges_without_deadlock(self, world2):
        def program(ctx):
            send = ctx.gpu.malloc(32)
            recv = ctx.gpu.malloc(32)
            send.data[:] = ctx.rank + 1
            peer = 1 - ctx.rank
            ctx.comm.Sendrecv(send, peer, 0, recv, peer, 0)
            assert (recv.data == peer + 1).all()

        world2.run(program)

    def test_probe(self, world2):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(ctx.gpu.malloc(16), dest=1, tag=5)
                return None
            # Wait (wall-clock) for the message to be posted.
            status = None
            for _ in range(1000):
                status = ctx.comm.Probe(source=0, tag=5)
                if status is not None:
                    break
            assert status is not None and status.Get_count() == 16
            ctx.comm.Recv(ctx.gpu.malloc(16), source=0, tag=5)
            return None

        world2.run(program)


class TestPackUnpack:
    def test_contiguous_pack_copies(self):
        world = World(1)
        ctx = world.contexts[0]
        t = Type_contiguous(16, FLOAT).Commit()
        src = ctx.gpu.malloc(64)
        dst = ctx.gpu.malloc(128)
        src.data[:] = 3
        position = ctx.comm.Pack((src, 1, t), dst, 10)
        assert position == 74
        assert (dst.data[10:74] == 3).all()

    def test_strided_pack_unpack_roundtrip(self):
        world = World(1)
        ctx = world.contexts[0]
        t = Type_vector(8, 4, 16, BYTE).Commit()
        src = ctx.gpu.malloc(t.extent)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint8)
        packed = ctx.gpu.malloc(t.size)
        ctx.comm.Pack((src, 1, t), packed, 0)
        out = ctx.gpu.malloc(t.extent)
        ctx.comm.Unpack(packed, 0, (out, 1, t))
        offsets = [i * 16 for i in range(8)]
        for offset in offsets:
            assert np.array_equal(out.data[offset : offset + 4], src.data[offset : offset + 4])

    def test_pack_size(self):
        world = World(1)
        comm = world.contexts[0].comm
        t = Type_vector(8, 4, 16, BYTE)
        assert comm.Pack_size(3, t) == 96

    def test_type_commit_via_comm(self):
        world = World(1)
        comm = world.contexts[0].comm
        t = Type_vector(2, 2, 4, BYTE)
        comm.Type_commit(t)
        assert t.committed


class TestMisc:
    def test_dup_preserves_rank_and_changes_context(self, world2):
        def program(ctx):
            dup = ctx.comm.Dup()
            assert dup.Get_rank() == ctx.rank
            assert dup.context != ctx.comm.context
            # messages on the dup'd communicator still match across ranks
            buf = ctx.gpu.host_alloc(8)
            if ctx.rank == 0:
                buf.data[:] = 1
                dup.Send(buf, dest=1)
            else:
                dup.Recv(buf, source=0)
                assert (buf.data == 1).all()
            return dup.context

        contexts = world2.run(program)
        assert contexts[0] == contexts[1]
