"""Tests for the interposed datatype-carrying collectives (Sec. 5, extended)."""

import numpy as np
import pytest

from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange
from repro.mpi.constructors import Type_contiguous, Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import interpose

SMALL = HaloSpec(nx=6, ny=6, nz=6, radius=2, fields=2, bytes_per_field=4)


def vector_type(comm, nblocks=8, block=2, pitch=16):
    return comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))


def typed_alltoallv(ctx, comm, datatype, *, device=True, iterations=1):
    """One symmetric typed all-to-all-v over ``comm``; returns the recv buffer."""
    size = comm.Get_size()
    alloc = ctx.gpu.malloc if device else (lambda n: np.zeros(n, dtype=np.uint8))
    send = alloc(datatype.extent * size)
    recv = alloc(datatype.extent * size)
    (send.data if device else send)[:] = (ctx.rank + 1) % 251
    counts = [1] * size
    displs = [peer * datatype.extent for peer in range(size)]
    for _ in range(iterations):
        comm.Alltoallv(
            send, counts, displs, recv, counts, displs, sendtypes=datatype, recvtypes=datatype
        )
    return recv


class TestAcceleration:
    def test_strided_device_collective_hits(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_alltoallv(ctx, comm, vector_type(comm))
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        results = World(4, ranks_per_node=2).run(program)
        assert results == [(1, 0)] * 4

    def test_accelerated_matches_baseline_bytes(self, summit_model):
        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            recv = typed_alltoallv(ctx, comm, vector_type(comm))
            return recv.data.copy()

        baseline = World(4, ranks_per_node=2).run(program, False)
        accelerated = World(4, ranks_per_node=2).run(program, True)
        for base, fast in zip(baseline, accelerated):
            assert np.array_equal(base, fast)

    def test_method_counts_recorded(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_alltoallv(ctx, comm, vector_type(comm))
            return dict(comm.stats.method_counts)

        for counts in World(2, ranks_per_node=1).run(program):
            assert sum(counts.values()) == 1  # one wire message to the other rank
            assert set(counts) <= {"oneshot", "device", "staged"}

    def test_forced_method_respected(self, summit_model):
        config = TempiConfig(method=PackMethod.DEVICE)

        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            typed_alltoallv(ctx, comm, vector_type(comm))
            return dict(comm.stats.method_counts)

        assert World(2, ranks_per_node=1).run(program) == [{"device": 1}] * 2

    def test_collective_faster_than_baseline(self, summit_model):
        """The Fig. 13 claim at unit-test scale (4 ranks, strided type)."""

        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            t = vector_type(comm, nblocks=512, block=8, pitch=64)
            start = ctx.clock.now
            typed_alltoallv(ctx, comm, t)
            return ctx.clock.now - start

        baseline = max(World(4, ranks_per_node=2).run(program, False))
        accelerated = max(World(4, ranks_per_node=2).run(program, True))
        assert baseline / accelerated > 10


class TestFallbacks:
    def _fallback_stats(self, summit_model, build, *, device=True, nranks=2):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_alltoallv(ctx, comm, build(comm), device=device)
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        return World(nranks, ranks_per_node=2).run(program)

    def test_contiguous_type_falls_back(self, summit_model):
        stats = self._fallback_stats(summit_model, lambda comm: comm.Type_commit(Type_contiguous(64, BYTE)))
        assert stats == [(0, 1)] * 2

    def test_host_buffers_fall_back(self, summit_model):
        stats = self._fallback_stats(summit_model, vector_type, device=False)
        assert stats == [(0, 1)] * 2

    def test_disabled_config_passes_through(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, TempiConfig.disabled(), model=summit_model)
            t = Type_vector(8, 2, 16, BYTE)
            t.Commit()  # system commit only: no handler attached
            typed_alltoallv(ctx, comm, t)
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        assert World(2, ranks_per_node=2).run(program) == [(0, 0)] * 2

    def test_byte_signature_not_interposed(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            send = ctx.gpu.malloc(4 * comm.Get_size())
            recv = ctx.gpu.malloc(4 * comm.Get_size())
            counts = [4] * comm.Get_size()
            displs = [4 * peer for peer in range(comm.Get_size())]
            comm.Alltoallv(send, counts, displs, recv, counts, displs)
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        assert World(2, ranks_per_node=2).run(program) == [(0, 0)] * 2

    def test_fallback_still_moves_bytes(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_contiguous(16, BYTE))
            recv = typed_alltoallv(ctx, comm, t)
            assert (recv.data[:16] == 1).all()  # rank 0's fill value
            return True

        assert all(World(2, ranks_per_node=2).run(program))


class TestHaloIterationStats:
    """InterposerStats and cache reuse across repeated halo iterations."""

    ITERATIONS = 3

    def _run_halo(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            app = HaloExchange(ctx, comm, SMALL, mode="neighbor")
            app.run(iterations=self.ITERATIONS, verify=True)
            return comm.stats, comm.tempi.cache.stats

        return World(4, ranks_per_node=2).run(program)

    def test_one_collective_hit_per_iteration(self, summit_model):
        for stats, _ in self._run_halo(summit_model):
            assert stats.collective_hits == self.ITERATIONS
            assert stats.collective_fallbacks == 0
            assert sum(stats.method_counts.values()) > 0

    def test_staging_buffers_reused_after_first_iteration(self, summit_model):
        for _, cache_stats in self._run_halo(summit_model):
            # Every staging key misses once (first exchange) and hits on the
            # remaining iterations: reuse rate (iterations-1)/iterations.
            assert cache_stats.persistent_misses > 0
            assert (
                cache_stats.persistent_hits
                == (self.ITERATIONS - 1) * cache_stats.persistent_misses
            )

    def test_neighbor_mode_equals_packed_mode_ghosts(self, summit_model):
        """Both exchange modes produce identical ghost regions."""

        def program(ctx, mode):
            comm = interpose(ctx, model=summit_model)
            app = HaloExchange(ctx, comm, SMALL, mode=mode)
            app.fill_interior()
            app.exchange()
            return app.local.data.copy()

        packed = World(4, ranks_per_node=2).run(program, "packed")
        neighbor = World(4, ranks_per_node=2).run(program, "neighbor")
        for a, b in zip(packed, neighbor):
            assert np.array_equal(a, b)


def typed_allgather(ctx, comm, datatype, *, device=True, nonblocking=False):
    """One uniform typed all-gather over ``comm``; returns the recv buffer."""
    size = comm.Get_size()
    alloc = ctx.gpu.malloc if device else (lambda n: np.zeros(n, dtype=np.uint8))
    send = alloc(datatype.extent)
    recv = alloc(datatype.extent * size)
    (send.data if device else send)[:] = (ctx.rank + 1) % 251
    if nonblocking:
        comm.Iallgather(send, 1, recv, sendtype=datatype, recvtype=datatype).Wait()
    else:
        comm.Allgather(send, 1, recv, sendtype=datatype, recvtype=datatype)
    return recv


class TestAllgatherAcceleration:
    """The root-less fan-out plan path (PR 4)."""

    def test_strided_device_allgather_hits(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_allgather(ctx, comm, vector_type(comm))
            return (
                comm.stats.collective_hits,
                comm.stats.collective_fallbacks,
                comm.stats.plans_built,
            )

        assert World(4, ranks_per_node=2).run(program) == [(1, 0, 1)] * 4

    def test_accelerated_matches_baseline_bytes(self, summit_model):
        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            recv = typed_allgather(ctx, comm, vector_type(comm))
            return recv.data.copy()

        baseline = World(4, ranks_per_node=2).run(program, False)
        accelerated = World(4, ranks_per_node=2).run(program, True)
        for base, fast in zip(baseline, accelerated):
            assert np.array_equal(base, fast)

    def test_one_pack_stage_fans_out(self, summit_model):
        """The contribution is packed once and posted to every peer."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_allgather(ctx, comm, vector_type(comm))
            return dict(comm.stats.method_counts), comm.stats.stages_overlapped

        for counts, overlapped in World(4, ranks_per_node=2).run(program):
            # One shared pack stage, three posted wire messages.
            assert sum(counts.values()) == 3
            assert len(set(counts.values())) == 1  # all posts share one method
            assert overlapped >= 1

    def test_nonblocking_defers_unpacks(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_allgather(ctx, comm, vector_type(comm), nonblocking=True)
            return comm.stats.deferred_unpacks

        assert all(n == 3 for n in World(4, ranks_per_node=2).run(program))

    def test_contended_selection_runs_end_to_end(self, summit_model):
        config = TempiConfig(selection="contended")

        def program(ctx, use_tempi):
            comm = interpose(ctx, config, model=summit_model) if use_tempi else ctx.comm
            recv = typed_allgather(ctx, comm, vector_type(comm))
            return recv.data.copy()

        baseline = World(4, ranks_per_node=2).run(program, False)
        contended = World(4, ranks_per_node=2).run(program, True)
        for base, fast in zip(baseline, contended):
            assert np.array_equal(base, fast)

    def test_host_buffers_fall_back(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            typed_allgather(ctx, comm, vector_type(comm), device=False)
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        assert World(2, ranks_per_node=2).run(program) == [(0, 1)] * 2

    def test_contiguous_type_falls_back(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_contiguous(16, BYTE))
            recv = typed_allgather(ctx, comm, t)
            assert (recv.data[:16] == 1).all()  # rank 0's fill value
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        assert World(2, ranks_per_node=2).run(program) == [(0, 1)] * 2

    def test_byte_signature_not_interposed(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            send = ctx.gpu.malloc(4)
            recv = ctx.gpu.malloc(4 * comm.Get_size())
            comm.Allgather(send, 4, recv)
            return (comm.stats.collective_hits, comm.stats.collective_fallbacks)

        assert World(2, ranks_per_node=2).run(program) == [(0, 0)] * 2
