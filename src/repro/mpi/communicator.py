"""Communicators: the MPI call surface each rank sees.

A :class:`Communicator` binds together one rank's virtual clock, its simulated
GPU runtime, the world's message router and the machine's network model, and
exposes the MPI operations the paper's applications use, with mpi4py-style
capitalised names (``Send``, ``Recv``, ``Pack`` …).

Buffer arguments follow the mpi4py convention: a buffer-like object alone
(treated as bytes), or a 2-tuple ``(buffer, datatype)``, or a 3-tuple
``(buffer, count, datatype)``.  Buffers are :class:`repro.gpu.memory.Buffer`
objects (device or host) or NumPy arrays (treated as pageable host memory).

Datatype handling is the *baseline* path here — one ``cudaMemcpyAsync`` per
contiguous block — because this class plays the role of the system MPI
(Spectrum MPI on Summit).  TEMPI's interposer wraps this class and replaces
exactly the calls the paper's library replaces.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.gpu.memory import Buffer, HostBuffer, MemoryKind
from repro.gpu.runtime import CudaRuntime
from repro.machine.network import NetworkModel
from repro.machine.topology import Topology
from repro.mpi import collectives as _collectives
from repro.mpi import typemap
from repro.mpi.baseline import BaselineDatatypeEngine
from repro.mpi.datatype import BYTE, Datatype
from repro.mpi.errors import MpiArgumentError, MpiRankError, MpiTruncationError
from repro.mpi.p2p import Envelope, MessageRouter
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status

#: Things accepted as the buffer part of a message specification.
BufferLike = Union[Buffer, np.ndarray]
BufferSpec = Union[BufferLike, tuple]


def as_buffer(obj: BufferLike) -> Buffer:
    """Coerce a NumPy array into a (shared-memory) host buffer."""
    if isinstance(obj, Buffer):
        return obj
    if isinstance(obj, np.ndarray):
        flat = obj.reshape(-1).view(np.uint8)
        return HostBuffer(flat.nbytes, MemoryKind.HOST_PAGEABLE, _array=flat)
    raise MpiArgumentError(f"expected a Buffer or ndarray, got {type(obj).__name__}")


class Communicator:
    """One rank's endpoint of a simulated MPI world."""

    def __init__(
        self,
        rank: int,
        size: int,
        router: MessageRouter,
        runtime: CudaRuntime,
        network: NetworkModel,
        topology: Topology,
        *,
        context: int = 0,
        world=None,
    ) -> None:
        if not 0 <= rank < size:
            raise MpiRankError(f"rank {rank} outside communicator of size {size}")
        self.rank = rank
        self.size = size
        self.router = router
        self.gpu = runtime
        self.network = network
        self.topology = topology
        self.context = context
        self.world = world
        self.baseline = BaselineDatatypeEngine(runtime)
        self._ndups = 0

    # ------------------------------------------------------------------ intro
    def Get_rank(self) -> int:
        """``MPI_Comm_rank``."""
        return self.rank

    def Get_size(self) -> int:
        """``MPI_Comm_size``."""
        return self.size

    @property
    def clock(self):
        """This rank's virtual clock (shared with its GPU runtime)."""
        return self.gpu.clock

    def Dup(self) -> "Communicator":
        """``MPI_Comm_dup``: same group, fresh context id.

        The new context id is derived deterministically from the parent's so
        that every rank calling ``Dup`` collectively (as MPI requires) agrees
        on it without central coordination.
        """
        self._ndups += 1
        return Communicator(
            self.rank,
            self.size,
            self.router,
            self.gpu,
            self.network,
            self.topology,
            context=self.context * 1009 + self._ndups,
            world=self.world,
        )

    # --------------------------------------------------------------- resolve
    def _resolve(self, spec: BufferSpec) -> tuple[Buffer, int, Datatype]:
        """Normalise a message specification to ``(buffer, count, datatype)``."""
        if isinstance(spec, (Buffer, np.ndarray)):
            buffer = as_buffer(spec)
            return buffer, buffer.nbytes, BYTE
        if isinstance(spec, (tuple, list)):
            if len(spec) == 2:
                buffer, datatype = spec
                buffer = as_buffer(buffer)
                if not isinstance(datatype, Datatype):
                    raise MpiArgumentError("second element of a 2-tuple spec must be a Datatype")
                if datatype.extent == 0:
                    raise MpiArgumentError("cannot infer a count for a zero-extent datatype")
                count = buffer.nbytes // datatype.extent
                if count == 0:
                    raise MpiArgumentError(
                        f"buffer of {buffer.nbytes} bytes holds no element of extent {datatype.extent}"
                    )
                return buffer, count, datatype
            if len(spec) == 3:
                buffer, count, datatype = spec
                buffer = as_buffer(buffer)
                if not isinstance(datatype, Datatype):
                    raise MpiArgumentError("third element of a 3-tuple spec must be a Datatype")
                if count <= 0:
                    raise MpiArgumentError(f"count must be positive, got {count}")
                return buffer, int(count), datatype
        raise MpiArgumentError(f"cannot interpret message specification {spec!r}")

    def _check_peer(self, peer: int, *, allow_any: bool = False) -> None:
        if allow_any and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self.size:
            raise MpiRankError(f"peer rank {peer} outside communicator of size {self.size}")

    # ----------------------------------------------------------- p2p internals
    def _prepare_payload(
        self, buffer: Buffer, count: int, datatype: Datatype
    ) -> tuple[np.ndarray, bool]:
        """Produce the contiguous wire payload for a send.

        Contiguous datatypes ship straight from the user buffer; derived
        datatypes go through the baseline engine into a host staging buffer,
        which is exactly the per-block path the paper measures.
        """
        datatype._check_committed()
        nbytes = typemap.packed_size(datatype, count)
        if datatype.is_contiguous_bytes:
            if nbytes > buffer.nbytes:
                raise MpiArgumentError(
                    f"sending {nbytes} bytes from a {buffer.nbytes}-byte buffer"
                )
            return buffer.data[:nbytes].copy(), buffer.is_device
        staging = HostBuffer(nbytes, MemoryKind.HOST_PINNED)
        self.baseline.pack(buffer, datatype, count, staging)
        return staging.data, False

    def _deliver_payload(
        self, envelope: Envelope, buffer: Buffer, count: int, datatype: Datatype
    ) -> int:
        """Copy a received payload into the user buffer; returns bytes received."""
        datatype._check_committed()
        capacity = typemap.packed_size(datatype, count)
        if envelope.nbytes > capacity:
            raise MpiTruncationError(
                f"message of {envelope.nbytes} bytes truncates a receive of {capacity} bytes"
            )
        if datatype.is_contiguous_bytes:
            buffer.data[: envelope.nbytes] = envelope.payload[: envelope.nbytes]
        else:
            staging = HostBuffer(envelope.nbytes, MemoryKind.HOST_PINNED, _array=envelope.payload)
            elements = envelope.nbytes // datatype.size if datatype.size else 0
            if elements:
                self.baseline.unpack(staging, 0, buffer, datatype, elements)
        return envelope.nbytes

    def _message_time(self, nbytes: int, peer: int, device: bool) -> float:
        if self.topology is not None and self.topology.hierarchical:
            return self.topology.message_time(
                self.rank, peer, nbytes, device_buffers=device
            )
        same_node = self.topology.same_node(self.rank, peer) if self.topology else True
        return self.network.message_time(nbytes, same_node=same_node, device_buffers=device)

    # ------------------------------------------------------------------ sends
    def Send(self, spec: BufferSpec, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send (``MPI_Send``)."""
        self._check_peer(dest)
        buffer, count, datatype = self._resolve(spec)
        payload, device = self._prepare_payload(buffer, count, datatype)
        duration = self._message_time(payload.nbytes, dest, device)
        self.clock.advance(duration)
        self.router.post(
            Envelope(
                source=self.rank,
                dest=dest,
                tag=tag,
                context=self.context,
                payload=payload,
                available_at=self.clock.now,
                device=device,
            )
        )

    def Isend(self, spec: BufferSpec, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (``MPI_Isend``)."""
        self._check_peer(dest)
        buffer, count, datatype = self._resolve(spec)
        payload, device = self._prepare_payload(buffer, count, datatype)
        duration = self._message_time(payload.nbytes, dest, device)
        available = self.clock.now + duration
        self.router.post(
            Envelope(
                source=self.rank,
                dest=dest,
                tag=tag,
                context=self.context,
                payload=payload,
                available_at=available,
                device=device,
            )
        )
        # The send buffer is reusable once the payload is captured; charge the
        # injection overhead only.
        injection = self.network.message_cost(0, same_node=True, device_buffers=False).latency_s
        return Request("send", completion_time=self.clock.now + injection, clock=self.clock)

    # ----------------------------------------------------------------- receives
    def Recv(
        self,
        spec: BufferSpec,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Status:
        """Blocking receive (``MPI_Recv``)."""
        self._check_peer(source, allow_any=True)
        buffer, count, datatype = self._resolve(spec)
        envelope = self.router.receive(self.rank, source, tag, self.context)
        self.clock.advance_to(envelope.available_at)
        nbytes = self._deliver_payload(envelope, buffer, count, datatype)
        result = status if status is not None else Status()
        result.source = envelope.source
        result.tag = envelope.tag
        result.count_bytes = nbytes
        return result

    def Irecv(
        self,
        spec: BufferSpec,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Nonblocking receive (``MPI_Irecv``); matching happens at ``Wait``.

        ``Test`` completes the receive once a matching message is present
        *and* virtually arrived (its ``available_at`` has passed on this
        rank's clock) — mailbox presence alone would make ``Test`` outcomes
        depend on the wall-clock thread schedule.
        """
        self._check_peer(source, allow_any=True)

        def complete() -> Status:
            return self.Recv(spec, source, tag)

        def arrival() -> Optional[float]:
            envelope = self.router.probe(self.rank, source, tag, self.context)
            return None if envelope is None else envelope.available_at

        # Readiness derives from the arrival probe: completable once the
        # matching message is present and its wire time has passed.
        return Request("recv", complete=complete, arrival=arrival, clock=self.clock)

    def Sendrecv(
        self,
        send_spec: BufferSpec,
        dest: int,
        sendtag: int,
        recv_spec: BufferSpec,
        source: int,
        recvtag: int,
        status: Optional[Status] = None,
    ) -> Status:
        """Combined send and receive (``MPI_Sendrecv``), deadlock-free."""
        request = self.Isend(send_spec, dest, sendtag)
        result = self.Recv(recv_spec, source, recvtag, status)
        request.Wait()
        return result

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe: status of a pending matching message, or None."""
        envelope = self.router.probe(self.rank, source, tag, self.context)
        if envelope is None:
            return None
        return Status(source=envelope.source, tag=envelope.tag, count_bytes=envelope.nbytes)

    # ------------------------------------------------------------------- pack
    def Pack(
        self,
        in_spec: BufferSpec,
        outbuf: BufferLike,
        position: int = 0,
    ) -> int:
        """``MPI_Pack`` with the system MPI's per-block baseline engine.

        Returns the updated position.
        """
        buffer, count, datatype = self._resolve(in_spec)
        out = as_buffer(outbuf)
        if datatype.is_contiguous_bytes:
            nbytes = typemap.packed_size(datatype, count)
            self.gpu.memcpy_async(out, buffer, nbytes, dst_offset=position)
            self.gpu.stream_synchronize()
            return position + nbytes
        return self.baseline.pack(buffer, datatype, count, out, position)

    def Unpack(
        self,
        inbuf: BufferLike,
        position: int,
        out_spec: BufferSpec,
    ) -> int:
        """``MPI_Unpack`` with the baseline engine; returns the updated position."""
        buffer, count, datatype = self._resolve(out_spec)
        source = as_buffer(inbuf)
        if datatype.is_contiguous_bytes:
            nbytes = typemap.packed_size(datatype, count)
            self.gpu.memcpy_async(buffer, source, nbytes, src_offset=position)
            self.gpu.stream_synchronize()
            return position + nbytes
        return self.baseline.unpack(source, position, buffer, datatype, count)

    def Pack_size(self, count: int, datatype: Datatype) -> int:
        """``MPI_Pack_size``: bytes needed to pack ``count`` elements."""
        return typemap.packed_size(datatype, count)

    def Type_commit(self, datatype: Datatype) -> Datatype:
        """``MPI_Type_commit`` as the system MPI performs it (no acceleration).

        Exposed on the communicator so that applications written against the
        interposed surface run unmodified against the plain system MPI.
        """
        return datatype.Commit()

    # ------------------------------------------------------------- collectives
    def Barrier(self) -> None:
        """``MPI_Barrier``."""
        _collectives.barrier(self)

    def Bcast(self, spec: BufferSpec, root: int = 0) -> None:
        """``MPI_Bcast``."""
        _collectives.bcast(self, spec, root)

    def Allreduce_scalar(self, value: float, op: str = "sum") -> float:
        """Allreduce of one Python scalar (sum/max/min)."""
        return _collectives.allreduce_scalar(self, value, op)

    def Allreduce(self, sendbuf: BufferSpec, recvbuf: BufferSpec, op: str = "sum") -> None:
        """``MPI_Allreduce`` (vector form, elementary datatypes)."""
        _collectives.allreduce(self, sendbuf, recvbuf, op)

    def Allgather_object(self, value) -> list:
        """Allgather of one picklable Python object per rank."""
        return _collectives.allgather_object(self, value)

    def _allgather_uniform(
        self, sendcount: int, recvtype: Optional[Datatype]
    ) -> tuple[list[int], list[int]]:
        """Expand ``MPI_Allgather``'s uniform contribution to the v-form lists.

        Byte form: each rank's ``sendcount`` bytes land at ``rank * sendcount``.
        Typed form: ``sendcount`` elements land at ``rank * sendcount * extent``
        (MPI's extent-based placement rule for the receive type).
        """
        sendcount = int(sendcount)
        if sendcount < 0:
            raise MpiArgumentError(f"sendcount must be non-negative, got {sendcount}")
        stride = sendcount if recvtype is None else sendcount * recvtype.extent
        counts = [sendcount] * self.size
        displs = [peer * stride for peer in range(self.size)]
        return counts, displs

    def Allgather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        recvbuf: BufferLike,
        *,
        sendtype: Optional[Datatype] = None,
        recvtype: Optional[Datatype] = None,
    ) -> None:
        """``MPI_Allgather``: every rank's uniform contribution to everyone.

        Without datatypes, ``sendcount`` is bytes and rank *i*'s contribution
        lands at byte ``i * sendcount`` of ``recvbuf``.  With datatypes the
        counts are elements and placement follows the receive type's extent —
        the datatype-carrying signature TEMPI's interposer accelerates.
        """
        if (sendtype is None) != (recvtype is None):
            raise MpiArgumentError("sendtype and recvtype must be given together")
        counts, displs = self._allgather_uniform(sendcount, recvtype)
        self.Allgatherv(
            sendbuf,
            sendcount,
            recvbuf,
            counts,
            displs,
            sendtype=sendtype,
            recvtypes=recvtype,
        )

    def Allgatherv(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtype: Optional[Datatype] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> None:
        """``MPI_Allgatherv``.

        Without ``sendtype``/``recvtypes`` the counts and displacements are
        raw byte ranges.  With datatypes each rank contributes ``sendcount``
        elements of ``sendtype`` and section *i* of ``recvbuf`` is unpacked as
        ``recvcounts[i]`` elements of rank *i*'s receive datatype at byte
        displacement ``recvdispls[i]``.
        """
        if (sendtype is None) != (recvtypes is None):
            raise MpiArgumentError("sendtype and recvtypes must be given together")
        if sendtype is None:
            _collectives.allgatherv(self, sendbuf, sendcount, recvbuf, recvcounts, recvdispls)
        else:
            _collectives.allgatherv_typed(
                self, sendbuf, sendcount, sendtype, recvbuf, recvcounts, recvdispls, recvtypes
            )

    def Alltoallv(
        self,
        sendbuf: BufferLike,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes: Optional[_collectives.TypesArg] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> None:
        """``MPI_Alltoallv``.

        Without ``sendtypes``/``recvtypes`` the counts and displacements are
        raw byte ranges of pre-packed buffers.  With datatypes the counts are
        elements and each section is packed/unpacked by the baseline engine —
        the datatype-carrying signature TEMPI's interposer accelerates.
        """
        if (sendtypes is None) != (recvtypes is None):
            raise MpiArgumentError("sendtypes and recvtypes must be given together")
        if sendtypes is None:
            _collectives.alltoallv(
                self, sendbuf, sendcounts, senddispls, recvbuf, recvcounts, recvdispls
            )
        else:
            _collectives.alltoallv_typed(
                self,
                sendbuf,
                sendcounts,
                senddispls,
                sendtypes,
                recvbuf,
                recvcounts,
                recvdispls,
                recvtypes,
            )

    def Neighbor_alltoallv(
        self,
        neighbors: Sequence[int],
        sendbuf: BufferLike,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes: Optional[_collectives.TypesArg] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> None:
        """``MPI_Neighbor_alltoallv`` over an explicit neighbour list.

        The datatype-carrying form (``sendtypes``/``recvtypes`` given) allows
        duplicate neighbours; sections of one pair travel concatenated in
        list order.
        """
        if (sendtypes is None) != (recvtypes is None):
            raise MpiArgumentError("sendtypes and recvtypes must be given together")
        if sendtypes is None:
            _collectives.neighbor_alltoallv(
                self, neighbors, sendbuf, sendcounts, senddispls, recvbuf, recvcounts, recvdispls
            )
        else:
            _collectives.neighbor_alltoallv_typed(
                self,
                neighbors,
                sendbuf,
                sendcounts,
                senddispls,
                sendtypes,
                recvbuf,
                recvcounts,
                recvdispls,
                recvtypes,
            )

    # ------------------------------------------------- nonblocking collectives
    @staticmethod
    def _collective_request(pending) -> Request:
        """Wrap a collective's deferred receive phase in a :class:`Request`."""
        finish, ready = pending

        def complete() -> Status:
            finish()
            return Status()

        return Request("coll", complete=complete, ready=ready)

    def Ialltoallv(
        self,
        sendbuf: BufferLike,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes: Optional[_collectives.TypesArg] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> Request:
        """Nonblocking ``MPI_Ialltoallv`` (byte or datatype-carrying form).

        Outgoing sections are validated, packed and posted immediately; the
        receive (and unpack) side is deferred to the returned request's
        ``Wait``/``Test``.  Like all collectives, every rank must post it in
        the same order and eventually complete it.
        """
        if (sendtypes is None) != (recvtypes is None):
            raise MpiArgumentError("sendtypes and recvtypes must be given together")
        if sendtypes is None:
            pending = _collectives.alltoallv_begin(
                self, sendbuf, sendcounts, senddispls, recvbuf, recvcounts, recvdispls
            )
        else:
            pending = _collectives.alltoallv_typed_begin(
                self,
                sendbuf,
                sendcounts,
                senddispls,
                sendtypes,
                recvbuf,
                recvcounts,
                recvdispls,
                recvtypes,
            )
        return self._collective_request(pending)

    def Iallgather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        recvbuf: BufferLike,
        *,
        sendtype: Optional[Datatype] = None,
        recvtype: Optional[Datatype] = None,
    ) -> Request:
        """Nonblocking ``MPI_Iallgather`` (byte or datatype-carrying form)."""
        if (sendtype is None) != (recvtype is None):
            raise MpiArgumentError("sendtype and recvtype must be given together")
        counts, displs = self._allgather_uniform(sendcount, recvtype)
        return self.Iallgatherv(
            sendbuf,
            sendcount,
            recvbuf,
            counts,
            displs,
            sendtype=sendtype,
            recvtypes=recvtype,
        )

    def Iallgatherv(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtype: Optional[Datatype] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> Request:
        """Nonblocking ``MPI_Iallgatherv``: contribution posted now, receives
        and unpacks deferred to the returned request's ``Wait``/``Test``."""
        if (sendtype is None) != (recvtypes is None):
            raise MpiArgumentError("sendtype and recvtypes must be given together")
        if sendtype is None:
            pending = _collectives.allgatherv_begin(
                self, sendbuf, sendcount, recvbuf, recvcounts, recvdispls
            )
        else:
            pending = _collectives.allgatherv_typed_begin(
                self, sendbuf, sendcount, sendtype, recvbuf, recvcounts, recvdispls, recvtypes
            )
        return self._collective_request(pending)

    def Ineighbor_alltoallv(
        self,
        neighbors: Sequence[int],
        sendbuf: BufferLike,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf: BufferLike,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes: Optional[_collectives.TypesArg] = None,
        recvtypes: Optional[_collectives.TypesArg] = None,
    ) -> Request:
        """Nonblocking ``MPI_Ineighbor_alltoallv`` over an explicit neighbour list."""
        if (sendtypes is None) != (recvtypes is None):
            raise MpiArgumentError("sendtypes and recvtypes must be given together")
        if sendtypes is None:
            pending = _collectives.neighbor_alltoallv_begin(
                self,
                neighbors,
                sendbuf,
                sendcounts,
                senddispls,
                recvbuf,
                recvcounts,
                recvdispls,
            )
        else:
            pending = _collectives.neighbor_alltoallv_typed_begin(
                self,
                neighbors,
                sendbuf,
                sendcounts,
                senddispls,
                sendtypes,
                recvbuf,
                recvcounts,
                recvdispls,
                recvtypes,
            )
        return self._collective_request(pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank {self.rank}/{self.size} ctx={self.context}>"
