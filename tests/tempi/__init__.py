"""Test package (keeps basenames like test_kernels.py unambiguous across subpackages)."""
