"""Simulated CUDA streams and events.

A stream is an ordered queue of device work.  In the simulation a stream
only needs to track *when* its most recently enqueued operation completes in
virtual time: enqueueing work is (nearly) free for the host, and a
``cudaStreamSynchronize`` advances the host clock to the stream's completion
time.  This captures the asynchrony that matters to TEMPI — e.g. the device
method can overlap a pack kernel on one stream with an unpack on another —
without simulating the GPU's internal scheduler.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.gpu.clock import VirtualClock
from repro.gpu.errors import CudaStreamError

_stream_ids = itertools.count(1)
_event_ids = itertools.count(1)


class Stream:
    """An in-order queue of simulated device operations."""

    def __init__(self, clock: VirtualClock, name: Optional[str] = None) -> None:
        self._clock = clock
        self._ready_time = clock.now
        self._destroyed = False
        self.handle = next(_stream_ids)
        self.name = name or f"stream-{self.handle}"
        self.operations = 0

    def _check_alive(self) -> None:
        if self._destroyed:
            raise CudaStreamError(f"{self.name} used after destruction")

    @property
    def ready_time(self) -> float:
        """Virtual time at which all currently enqueued work completes."""
        return self._ready_time

    @property
    def busy(self) -> bool:
        """True if the stream still has outstanding work at the current host time."""
        return self._ready_time > self._clock.now

    def enqueue(self, duration: float, host_overhead: float = 0.0) -> float:
        """Enqueue ``duration`` seconds of device work.

        ``host_overhead`` is charged to the host clock immediately (the cost
        of the runtime API call itself); the device work begins when both the
        host has issued it and all previously enqueued work has finished.
        Returns the completion time of the new operation.
        """
        self._check_alive()
        if duration < 0 or host_overhead < 0:
            raise CudaStreamError("durations must be non-negative")
        if host_overhead:
            self._clock.advance(host_overhead)
        start = max(self._ready_time, self._clock.now)
        self._ready_time = start + duration
        self.operations += 1
        return self._ready_time

    def synchronize(self, sync_overhead: float = 0.0) -> float:
        """Block the host until all enqueued work completes (``cudaStreamSynchronize``)."""
        self._check_alive()
        self._clock.advance_to(self._ready_time)
        if sync_overhead:
            self._clock.advance(sync_overhead)
        return self._clock.now

    def wait_event(self, event: "Event") -> None:
        """Make subsequent work on this stream wait for ``event`` (``cudaStreamWaitEvent``)."""
        self._check_alive()
        if event.time is None:
            raise CudaStreamError("cannot wait on an unrecorded event")
        self._ready_time = max(self._ready_time, event.time)

    def destroy(self) -> None:
        """Destroy the stream; further use raises :class:`CudaStreamError`."""
        self._destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stream {self.name} ready_at={self._ready_time:.9f}>"


class Event:
    """A simulated CUDA event: a timestamp captured from a stream."""

    def __init__(self, clock: VirtualClock, name: Optional[str] = None) -> None:
        self._clock = clock
        self.time: Optional[float] = None
        self.handle = next(_event_ids)
        self.name = name or f"event-{self.handle}"

    def record(self, stream: Stream) -> None:
        """Record the completion time of all work currently in ``stream``."""
        self.time = stream.ready_time

    def synchronize(self) -> float:
        """Block the host until the recorded work completes."""
        if self.time is None:
            raise CudaStreamError("cannot synchronize an unrecorded event")
        return self._clock.advance_to(self.time)

    def query(self) -> bool:
        """True if the recorded work has completed by the current host time."""
        if self.time is None:
            raise CudaStreamError("cannot query an unrecorded event")
        return self.time <= self._clock.now

    @staticmethod
    def elapsed_time(start: "Event", end: "Event") -> float:
        """Seconds of virtual time between two recorded events."""
        if start.time is None or end.time is None:
            raise CudaStreamError("both events must be recorded")
        return end.time - start.time
