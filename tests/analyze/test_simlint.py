"""Fixture-snippet tests for every simlint rule (``tools/analyze``).

Each rule gets a positive case (the violation fires), a negative case
(idiomatic clean code stays clean) and a suppression case (the
``# simlint: disable=...`` escape hatch works, and an unjustified disable is
itself reported as SIM000).  The snippets are written into a temporary tree
mirroring the ``src/repro/...`` layout, because every rule scopes by path.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from tools.analyze.cli import main as lint_main
from tools.analyze.core import Violation, run_lint


def lint_tree(tmp_path: Path, files: dict[str, str], select=None) -> list[Violation]:
    """Write a fixture tree and lint it."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return run_lint(tmp_path, select)


def codes(findings: list[Violation]) -> list[str]:
    return [finding.code for finding in findings]


class TestSim001WallClock:
    def test_wall_clock_call_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/clocked.py": """\
                import time

                def priced():
                    return time.perf_counter()
            """,
        })
        assert codes(findings) == ["SIM001"]
        assert findings[0].line == 4
        assert "time.perf_counter" in findings[0].message

    def test_from_import_alias_resolves(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/sneaky.py": """\
                from time import perf_counter as pc

                def priced():
                    return pc()
            """,
        })
        assert codes(findings) == ["SIM001"]

    def test_random_call_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/jitter.py": """\
                import random

                def priced():
                    return random.random()
            """,
        })
        assert codes(findings) == ["SIM001"]
        assert "random" in findings[0].message

    def test_measurement_seam_is_whitelisted(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/measurement.py": """\
                import time

                def host_timer():
                    return time.perf_counter()
            """,
            "src/repro/bench/harness.py": """\
                import time

                def wall():
                    return time.perf_counter()
            """,
        })
        assert findings == []

    def test_justified_disable_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/clocked.py": """\
                import time

                def diagnostic():
                    return time.perf_counter()  # simlint: disable=SIM001 -- never priced
            """,
        })
        assert findings == []

    def test_unjustified_disable_is_sim000(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/clocked.py": """\
                import time

                def diagnostic():
                    return time.perf_counter()  # simlint: disable=SIM001
            """,
        })
        assert codes(findings) == ["SIM000"]
        assert "justification" in findings[0].message


class TestSim002SelectionPurity:
    def test_reachable_mutation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/selection.py": """\
                def price(nic):
                    return helper(nic)

                def helper(nic):
                    nic.reserve(0, 1, 0.0, 1.0)
            """,
        })
        assert codes(findings) == ["SIM002"]
        assert "nic.reserve" in findings[0].message

    def test_mutation_through_method_chain_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/selection.py": """\
                class Selector:
                    def __call__(self, nbytes):
                        return self._decide(nbytes)

                    def _decide(self, nbytes):
                        self.nic.ingest(0, [])
                        return nbytes
            """,
        })
        assert codes(findings) == ["SIM002"]

    def test_pure_reads_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/selection.py": """\
                def price(nic, rank, now):
                    backlog = nic.port_free_at(rank) - now
                    return backlog + nic.ingest_backlog(rank, now)
            """,
        })
        assert findings == []

    def test_unreachable_mutation_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/selection.py": """\
                def price(nic, rank):
                    return nic.port_free_at(rank)
            """,
            "src/repro/tempi/progress.py": """\
                def post(nic):
                    nic.reserve(0, 1, 0.0, 1.0)
            """,
        })
        assert findings == []

    def test_justified_disable_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/selection.py": """\
                def warm(nic):
                    nic.reserve(0, 1, 0.0, 0.0)  # simlint: disable=SIM002 -- test-only warmup
            """,
        })
        assert findings == []


class TestSim003UnorderedIteration:
    def test_rank_keyed_accumulation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/ledger.py": """\
                class Ledger:
                    def drain(self):
                        busy = 0.0
                        for record in self._pending.values():
                            busy += record
                        return busy
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_set_comprehension_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/mixer.py": """\
                def order(ranks):
                    return [rank * 2 for rank in {1, 2, 3}]
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_rail_cursor_accumulation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/fabric.py": """\
                class Fabric:
                    def busy(self):
                        total = 0.0
                        for free_at in self._rail_ports.values():
                            total += free_at
                        return total
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_shared_uplink_recurrence_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/fabric.py": """\
                class Fabric:
                    def horizon(self):
                        last = 0.0
                        for key in self._shared_links:
                            last = max(last, self._shared_links[key])
                        return last
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_path_cache_accumulation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/routes.py": """\
                class Router:
                    def latency_floor(self):
                        floor = 0.0
                        for path in self._paths.values():
                            floor += path.latency_s
                        return floor
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_batch_class_count_accumulation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/replay.py": """\
                class Replay:
                    def charge(self, clock, costs):
                        for name, hits in self._steady_counts.items():
                            clock += hits * costs[name]
                        return clock
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_method_count_recurrence_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/stats.py": """\
                class Stats:
                    def dominant(self):
                        best = 0
                        for hits in self.method_counts.values():
                            best = max(best, best + hits)
                        return best
            """,
        })
        assert codes(findings) == ["SIM003"]

    def test_sorted_batch_class_iteration_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/replay.py": """\
                class Replay:
                    def charge(self, clock, costs):
                        for name in sorted(self._steady_counts):
                            clock += self._steady_counts[name] * costs[name]
                        return clock
            """,
        })
        assert findings == []

    def test_sorted_rail_iteration_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/fabric.py": """\
                class Fabric:
                    def busy(self):
                        total = 0.0
                        for key in sorted(self._ingest_rails):
                            total += self._ingest_rails[key]
                        return total
            """,
        })
        assert findings == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/ledger.py": """\
                class Ledger:
                    def drain(self):
                        busy = 0.0
                        for key in sorted(self._pending):
                            busy += self._pending[key]
                        return busy
            """,
        })
        assert findings == []

    def test_order_independent_loop_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/ledger.py": """\
                class Ledger:
                    def expired(self, now):
                        stale = []
                        for key in self._pending:
                            if key < now:
                                stale.append(key)
                        return stale
            """,
        })
        assert findings == []

    def test_out_of_scope_files_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/apps/sweep.py": """\
                def total(entries):
                    acc = 0.0
                    for entry in {1.0, 2.0}:
                        acc += entry
                    return acc
            """,
        })
        assert findings == []

    def test_justified_disable_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/ledger.py": """\
                class Ledger:
                    def drain(self):
                        busy = 0.0
                        for record in self._pending.values():  # simlint: disable=SIM003 -- single-rank dict
                            busy += record
                        return busy
            """,
        })
        assert findings == []


class TestSim004DocCoverage:
    CONFIG = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class TempiConfig:
            alpha: int = 0
            beta: float = 0.0
    """

    def test_undocumented_field_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/config.py": self.CONFIG,
            "docs/CONFIG.md": "Only `alpha` is documented.\n",
        })
        assert codes(findings) == ["SIM004"]
        assert "`beta`" in findings[0].message
        assert findings[0].line == 6

    def test_documented_fields_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/config.py": self.CONFIG,
            "docs/CONFIG.md": "Both `alpha` and `beta` are documented.\n",
        })
        assert findings == []

    def test_justified_disable_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/tempi/config.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class TempiConfig:
                    alpha: int = 0
                    beta: float = 0.0  # simlint: disable=SIM004 -- internal scratch knob
            """,
            "docs/CONFIG.md": "Only `alpha` is documented.\n",
        })
        assert findings == []


class TestSim005LedgerAccumulation:
    def test_float_augadd_in_loop_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/nic.py": """\
                class NicTimeline:
                    def ingest(self, stalls):
                        for stall in stalls:
                            self.ingest_stalled_s += stall
            """,
        })
        assert codes(findings) == ["SIM005"]
        assert "ledger_sum" in findings[0].message

    def test_ledger_helper_body_is_exempt(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/nic.py": """\
                def ledger_sum(values, start=0.0):
                    total = start
                    for value in values:
                        total += value
                    return total
            """,
        })
        assert findings == []

    def test_integer_counters_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/nic.py": """\
                class NicTimeline:
                    def ingest(self, records):
                        for record in records:
                            self.ingests += 1
            """,
        })
        assert findings == []

    def test_justified_disable_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/nic.py": """\
                class NicTimeline:
                    def ingest(self, stalls):
                        for stall in stalls:
                            self.ingest_stalled_s += stall  # simlint: disable=SIM005 -- singleton loop
            """,
        })
        assert findings == []


class TestDriverAndCli:
    def test_findings_sort_stably(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/b.py": """\
                import time

                def late():
                    return time.monotonic()
            """,
            "src/repro/machine/a.py": """\
                import time

                def early():
                    return time.time()
            """,
        })
        assert [finding.path for finding in findings] == [
            "src/repro/machine/a.py",
            "src/repro/machine/b.py",
        ]

    def test_select_restricts_codes(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/machine/mixed.py": """\
                import time

                def f(self):
                    busy = 0.0
                    for record in self._pending.values():
                        busy += record
                    return busy + time.time()
            """,
        }, select=["SIM003"])
        assert codes(findings) == ["SIM003"]

    def test_cli_reports_and_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "src/repro/machine").mkdir(parents=True)
        (tmp_path / "src/repro/machine/clocked.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        code = lint_main(["--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/machine/clocked.py:4: SIM001" in out

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "src/repro").mkdir(parents=True)
        (tmp_path / "src/repro/pure.py").write_text("def f():\n    return 1\n")
        code = lint_main(["--root", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_repo_tree_is_clean(self):
        """The real tree stays lint-clean (the acceptance gate, as a test)."""
        root = Path(__file__).resolve().parents[2]
        findings = run_lint(root)
        assert findings == [], "\n".join(finding.render() for finding in findings)
