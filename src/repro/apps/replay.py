"""Trace replay: turn a recorded op/counts/peers schedule into a benchmark.

A *trace* is a JSON document describing a communication schedule rank-free:

.. code-block:: json

    {"version": 1, "nranks": 8, "ranks_per_node": 2, "ops": [
        {"op": "alltoallv", "counts": [[...]], "item_bytes": 2048, "item_pad": 64},
        {"op": "allreduce", "count": 4096, "dtype": "float32", "reduce": "sum"},
        {"op": "p2p", "edges": [[0, 1, 1]], "item_bytes": 65536, "item_pad": 64}
    ]}

:func:`replay_trace` runs the schedule on a fresh
:class:`~repro.mpi.world.World` through TEMPI's interposer and returns every
rank's priced clock, counter snapshot and receive-buffer digest — all
deterministic, so the same trace under the same config replays bit-identically
(``repro replay`` asserts exactly that across two runs).  Traces come from
:func:`repro.apps.moe.moe_trace`, :func:`repro.apps.pipeline.pipeline_trace`,
or any external recorder emitting the schema above; :func:`load_trace`
validates the document and names the offending record on any malformed field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE, Datatype
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: Trace-record ops :func:`replay_trace` understands.
TRACE_OPS = ("alltoallv", "allreduce", "p2p")

#: Elementary dtypes an ``allreduce`` record may name.
_ALLREDUCE_DTYPES = ("int8", "int32", "int64", "float32", "float64")

#: Tag space of replayed p2p edges (disjoint from apps and collectives).
_REPLAY_TAG_BASE = 4_000_000


class TraceError(ValueError):
    """A malformed trace document; the message names the offending record."""


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise TraceError(f"{where}: {message}")


def _check_pitched_item(record: dict, where: str) -> None:
    item_bytes = record.get("item_bytes")
    item_pad = record.get("item_pad")
    _require(
        isinstance(item_bytes, int) and item_bytes > 0 and item_bytes % 2 == 0,
        where, f"item_bytes must be a positive even integer, got {item_bytes!r}",
    )
    _require(
        isinstance(item_pad, int) and item_pad > 0 and item_pad % 2 == 0,
        where, f"item_pad must be a positive even integer, got {item_pad!r}",
    )


def _validate_record(record, index: int, nranks: int) -> None:
    where = f"ops[{index}]"
    _require(isinstance(record, dict), where, f"record must be an object, got {type(record).__name__}")
    op = record.get("op")
    _require(op in TRACE_OPS, where, f"unknown op {op!r}; expected one of {TRACE_OPS}")
    if op == "alltoallv":
        counts = record.get("counts")
        _require(
            isinstance(counts, list) and len(counts) == nranks
            and all(isinstance(row, list) and len(row) == nranks for row in counts),
            where, f"counts must be a {nranks}x{nranks} matrix",
        )
        _require(
            all(isinstance(c, int) and c >= 0 for row in counts for c in row),
            where, "counts entries must be non-negative integers",
        )
        _check_pitched_item(record, where)
    elif op == "allreduce":
        count = record.get("count")
        _require(isinstance(count, int) and count > 0, where,
                 f"count must be a positive integer, got {count!r}")
        dtype = record.get("dtype")
        _require(dtype in _ALLREDUCE_DTYPES, where,
                 f"dtype must be one of {_ALLREDUCE_DTYPES}, got {dtype!r}")
        reduce_op = record.get("reduce", "sum")
        _require(reduce_op in ("sum", "prod", "min", "max"), where,
                 f"reduce must be sum/prod/min/max, got {reduce_op!r}")
    else:  # p2p
        edges = record.get("edges")
        _require(isinstance(edges, list) and edges, where, "edges must be a non-empty list")
        for position, edge in enumerate(edges):
            _require(
                isinstance(edge, list) and len(edge) == 3
                and all(isinstance(entry, int) for entry in edge),
                where, f"edges[{position}] must be [src, dst, nitems] integers",
            )
            src, dst, nitems = edge
            _require(0 <= src < nranks and 0 <= dst < nranks and src != dst, where,
                     f"edges[{position}] endpoints ({src}, {dst}) invalid for {nranks} ranks")
            _require(nitems > 0, where, f"edges[{position}] nitems must be positive, got {nitems}")
        _check_pitched_item(record, where)


def load_trace(source: Union[str, Path, dict]) -> dict:
    """Load and validate a trace document (path or already-parsed dict).

    Raises :class:`TraceError` naming the offending field or record index
    for any malformed document.
    """
    if isinstance(source, (str, Path)):
        try:
            trace = json.loads(Path(source).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"{source}: not valid JSON ({exc})") from exc
    else:
        trace = source
    _require(isinstance(trace, dict), "trace", f"document must be an object, got {type(trace).__name__}")
    _require(trace.get("version") == 1, "trace", f"unsupported version {trace.get('version')!r}")
    nranks = trace.get("nranks")
    _require(isinstance(nranks, int) and nranks > 0, "trace",
             f"nranks must be a positive integer, got {nranks!r}")
    ranks_per_node = trace.get("ranks_per_node", 1)
    _require(isinstance(ranks_per_node, int) and ranks_per_node > 0, "trace",
             f"ranks_per_node must be a positive integer, got {ranks_per_node!r}")
    ops = trace.get("ops")
    _require(isinstance(ops, list), "trace", f"ops must be a list, got {type(ops).__name__}")
    for index, record in enumerate(ops):
        _validate_record(record, index, nranks)
    return trace


def _pitched_datatype(item_bytes: int, item_pad: int) -> Datatype:
    half = item_bytes // 2
    return Type_vector(2, half, half + item_pad // 2, BYTE)


def _replay_alltoallv(ctx, comm, record: dict, index: int, digest) -> None:
    counts = np.asarray(record["counts"], dtype=np.int64)
    datatype = comm.Type_commit(_pitched_datatype(record["item_bytes"], record["item_pad"]))
    extent = datatype.extent
    sendcounts = [int(c) for c in counts[ctx.rank]]
    recvcounts = [int(counts[peer][ctx.rank]) for peer in range(ctx.size)]
    senddispls = list(np.cumsum([0] + [c * extent for c in sendcounts[:-1]]).astype(int))
    recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
    send = ctx.gpu.malloc(max(1, sum(sendcounts) * extent))
    recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
    send.data[:] = (index + ctx.rank) % 251
    comm.Alltoallv(
        send, sendcounts, senddispls, recv, recvcounts, recvdispls,
        sendtypes=datatype, recvtypes=datatype,
    )
    digest.update(recv.data.tobytes())


def _replay_allreduce(ctx, comm, record: dict, index: int, digest) -> None:
    from repro.mpi import datatype as _datatype

    dtype = np.dtype(record["dtype"])
    named = {
        "int8": _datatype.CHAR,
        "int32": _datatype.INT,
        "int64": _datatype.INT64,
        "float32": _datatype.FLOAT,
        "float64": _datatype.DOUBLE,
    }[record["dtype"]]
    count = record["count"]
    nbytes = count * dtype.itemsize
    send = ctx.gpu.malloc(nbytes)
    recv = ctx.gpu.malloc(nbytes)
    values = (np.arange(count) % 97 + (ctx.rank + index) % 7).astype(dtype)
    send.data[:nbytes] = values.view(np.uint8)
    comm.Allreduce((send, count, named), (recv, count, named), record.get("reduce", "sum"))
    digest.update(recv.data.tobytes())


def _replay_p2p(ctx, comm, record: dict, index: int, digest) -> None:
    datatype = comm.Type_commit(_pitched_datatype(record["item_bytes"], record["item_pad"]))
    extent = datatype.extent
    requests = []
    for position, (src, dst, nitems) in enumerate(record["edges"]):
        tag = _REPLAY_TAG_BASE + index * 1000 + position
        if ctx.rank == dst:
            recv = ctx.gpu.malloc(nitems * extent)
            requests.append((comm.Irecv((recv, nitems, datatype), src, tag), recv))
        if ctx.rank == src:
            send = ctx.gpu.malloc(nitems * extent)
            send.data[:] = (index + position + src) % 251
            requests.append((comm.Isend((send, nitems, datatype), dst, tag), None))
    for request, recv in requests:
        request.Wait()
        if recv is not None:
            digest.update(recv.data.tobytes())


_REPLAYERS = {
    "alltoallv": _replay_alltoallv,
    "allreduce": _replay_allreduce,
    "p2p": _replay_p2p,
}


@dataclass(frozen=True)
class ReplayResult:
    """One replay run's observables (per-rank lists, rank order)."""

    nranks: int
    ops: int
    clocks: list
    stats: list
    digests: list

    @property
    def completion_s(self) -> float:
        """The schedule's completion: the slowest rank's priced clock."""
        return max(self.clocks)


def replay_trace(
    source: Union[str, Path, dict],
    *,
    model,
    config: Optional[TempiConfig] = None,
    topology=None,
) -> ReplayResult:
    """Replay a trace on a fresh :class:`World` and report priced clocks.

    Deterministic: the same trace under the same config returns bit-identical
    clocks, counters and digests on every run.
    """
    trace = load_trace(source)

    def program(ctx):
        cfg = config if config is not None else TempiConfig()
        comm = interpose(ctx, cfg, model=model)
        digest = hashlib.sha256()
        for index, record in enumerate(trace["ops"]):
            _REPLAYERS[record["op"]](ctx, comm, record, index, digest)
        stats = comm.stats
        snapshot = {
            "collective_hits": stats.collective_hits,
            "collective_fallbacks": stats.collective_fallbacks,
            "plans_built": stats.plans_built,
            "contention_stalls": stats.contention_stalls,
            "ingest_stalls": stats.ingest_stalls,
            "sends": stats.sends,
            "recvs": stats.recvs,
        }
        return ctx.clock.now, snapshot, digest.hexdigest()

    kwargs = {"ranks_per_node": trace["ranks_per_node"]}
    if topology is not None:
        kwargs["topology"] = topology
    rows = World(trace["nranks"], **kwargs).run(program)
    return ReplayResult(
        nranks=trace["nranks"],
        ops=len(trace["ops"]),
        clocks=[row[0] for row in rows],
        stats=[row[1] for row in rows],
        digests=[row[2] for row in rows],
    )
