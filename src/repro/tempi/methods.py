"""The packing methods for MPI_Send/MPI_Recv (Sec. 4), as plan one-liners.

All three methods move the same packed bytes; they differ in where the
intermediate contiguous buffer lives and which transfer primitive carries it:

``device`` (Eq. 1)
    Pack into an intermediate **device** buffer, send it with the CUDA-aware
    path (``T_gpu-gpu``), unpack from a device buffer at the destination.
``oneshot`` (Eq. 2)
    Pack directly into **mapped host** memory over the interconnect
    (zero-copy), send it with the host path (``T_cpu-cpu``), unpack straight
    from mapped host memory at the destination.
``staged`` (Eq. 3)
    Like ``device`` but the intermediate buffer is explicitly copied to a
    pinned host buffer before the host-path send (and back on the receive).
    The paper finds it never wins on Summit (Fig. 9b); it is implemented so
    the benchmark can show the same thing.

Since the plan redesign the bespoke per-op engines that used to live here are
gone: every entry point **compiles to a**
:class:`~repro.tempi.plan.MessagePlan` and runs it through a
:class:`~repro.tempi.executor.PlanExecutor` — the same compile → execute →
wait path the interposer's blocking and nonblocking calls use.  The functions
below remain as the stable, communicator-level API the tests and benchmarks
drive directly.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.executor import PlanExecutor
from repro.tempi.packer import Packer
from repro.tempi.plan import (
    PlanError,
    PlanSection,
    compile_allgather,
    compile_exchange,
    compile_recv,
    compile_send,
    staging_kind,
)
from repro.tempi.selection import MethodSelector

#: Backwards-compatible names: the section dataclass and error type moved to
#: :mod:`repro.tempi.plan` with the IR redesign (and the selector protocol to
#: :mod:`repro.tempi.selection` with the selection subsystem).
MethodError = PlanError
PackedSection = PlanSection
_staging_kind = staging_kind

__all__ = [
    "MethodError",
    "MethodSelector",
    "PackedSection",
    "allgather_packed",
    "alltoallv_packed",
    "neighbor_packed",
    "pack_to_user_buffer",
    "recv_packed",
    "send_packed",
    "unpack_from_user_buffer",
]


def send_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    dest: int,
    tag: int,
) -> None:
    """Pack ``count`` objects from ``buffer`` and send them with ``method``."""
    plan = compile_send(packer, buffer, count, dest, tag, method)
    PlanExecutor(comm, cache).execute(plan).Wait()


def recv_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    source: int = ANY_SOURCE,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> Status:
    """Receive packed objects with ``method`` and unpack them into ``buffer``."""
    plan = compile_recv(packer, buffer, count, source, tag, method)
    result = PlanExecutor(comm, cache).execute(plan).Wait()
    return result if status is None else status.copy_from(result)


def alltoallv_packed(
    comm,
    cache: ResourceCache,
    select: MethodSelector,
    send,
    send_sections,
    recv,
    recv_sections,
) -> dict[str, int]:
    """TEMPI's datatype-carrying all-to-all-v: one pack kernel per peer.

    Where the system path pays one ``cudaMemcpyAsync`` per contiguous block
    of every section, this path packs each peer's segment with a single
    kernel into a cached staging buffer whose memory kind follows the
    per-message model decision, and — under the default overlapped schedule —
    posts each peer's wire transfer the moment its pack stream completes.

    Returns the per-method message counts (for :class:`InterposerStats`).
    """
    plan = compile_exchange(comm.rank, send, send_sections, recv, recv_sections, select)
    PlanExecutor(comm, cache).execute(plan).Wait()
    return plan.method_counts()


def neighbor_packed(
    comm,
    cache: ResourceCache,
    select: MethodSelector,
    send,
    send_sections,
    recv,
    recv_sections,
) -> dict[str, int]:
    """TEMPI's neighbour all-to-all-v: identical engine, sparse section lists.

    The section lists already carry explicit peers (with duplicates allowed,
    concatenated in list order), so the dense and neighbour collectives share
    :func:`alltoallv_packed` exactly the way the system-path siblings share
    their engine — same semantics, same cost accounting.
    """
    return alltoallv_packed(comm, cache, select, send, send_sections, recv, recv_sections)


def allgather_packed(
    comm,
    cache: ResourceCache,
    select: MethodSelector,
    send,
    send_section,
    recv,
    recv_sections,
) -> dict[str, int]:
    """TEMPI's datatype-carrying all-gather-v: pack once, fan out to everyone.

    The root-less sibling of :func:`alltoallv_packed`: this rank's
    contribution is packed with a single kernel pipeline and every peer's
    post stage shares that payload, while each incoming contribution is
    unpacked per peer.  Returns the per-method message counts.
    """
    plan = compile_allgather(
        comm.rank, comm.size, send, send_section, recv, recv_sections, select
    )
    PlanExecutor(comm, cache).execute(plan).Wait()
    return plan.method_counts()


def pack_to_user_buffer(
    comm,
    packer: Packer,
    buffer,
    count: int,
    outbuf,
    position: int,
) -> int:
    """TEMPI's ``MPI_Pack``: one kernel into the user's output buffer.

    Returns the updated position.  Used by the interposer when both buffers
    are usable from the GPU.
    """
    written = packer.pack(comm.gpu, buffer, outbuf, count, dst_offset=position)
    return position + written


def unpack_from_user_buffer(
    comm,
    packer: Packer,
    inbuf,
    position: int,
    buffer,
    count: int,
) -> int:
    """TEMPI's ``MPI_Unpack``; returns the updated position."""
    consumed = packer.unpack(comm.gpu, inbuf, buffer, count, src_offset=position)
    return position + consumed
