"""The virtual NIC timeline: full-duplex injection/ingestion-port accounting.

Before this module existed, the wire was priced *per plan*: the plan executor
kept a local ``nic_free`` cursor for the duration of one collective, so two
plans in flight at once (two ``Ialltoallv``s, a burst of ``Isend``s) never
contended for the NIC and the simulator over-reported the overlap win exactly
where injection-rate limits should bite.  :class:`NicTimeline` is the shared
ledger that makes the accounting honest — on **both ends of the wire**.

Send side (the PR-3 rules, unchanged and always active):

* every rank owns one **injection port**; all messages a rank injects —
  across plans, across operations — serialise on it at
  :data:`~repro.machine.network.DEFAULT_WIRE_OVERLAP` occupancy (the same
  factor the analytic all-to-all-v model discounts by, so single-plan pricing
  is unchanged)::

      start    = max(ready, port_free[src], link_free[src, dst])
      arrival  = start + wire
      port_free[src]      = start + overlap * wire
      link_free[src, dst] = arrival

* every directed ``(source, destination)`` pair is a **link** on which
  messages serialise *fully*: two messages from one rank to the same peer
  share everything end to end and cannot pipeline the way messages to
  distinct peers can.

Receive side (``TempiConfig(nic="duplex")``): every rank also owns one
**ingestion port**, the mirror of its injection port.  A message whose last
byte would land at ``arrival`` occupies the destination's ingestion port for
the same ``overlap`` fraction of its wire time, aligned at the *start* of its
landing window — so a lone message (or a stream whose arrivals are already
spaced by the sender-side port rule) is never delayed, while an **incast**
(many senders converging on one receiver) queues::

      begin    = max(arrival - wire, ingest_free[dst])
      landing  = begin + wire                      # the delayed arrival
      ingest_free[dst] = begin + overlap * wire

Determinism.  Send-side reservations are **source-scoped**: a rank's
injection timing depends only on its own call order, never on the wall-clock
interleaving of other rank threads.  Receive-side reservations necessarily
mix sources, so they are committed by the *receiving* rank (in its own
program order — deterministic) through :meth:`NicTimeline.ingest`, and every
commit batch is internally ordered by the message key ``(post_time,
source_rank, seq)`` — ``post_time`` being the virtual time the message
entered the wire and ``seq`` a per-source counter — so one plan's receive
set prices identically however the executor threads interleaved the posts.
:meth:`ingest_backlog` additionally exposes an *advisory* view of the
posted-but-not-yet-ingested traffic converging on a rank, which is what the
contention-aware method selector prices a hot peer with.

Topology extension (PR 8).  When a reservation carries a resolved
:class:`~repro.machine.topology.PathSpec`, three further cursor families
join the books, all kept in their own dictionaries so the flat books above
stay byte-identical when no path is given:

* **NIC rails** — ``path.rail`` names a ``(node, rail)`` injection rail the
  node's ranks share; it advances exactly like an injection port
  (``start + overlap * wire``) and joins the start ``max``.  The mirrored
  ``record.rail`` on an :class:`IngestRecord` does the same for the
  receive side.
* **Shared uplink ledgers** — every ``(key, bandwidth)`` entry of
  ``path.shared`` names a leaf switch's uplink bundle.  The message cannot
  start before the bundle frees, and occupies it for its *own* serial time
  on that bundle (``nbytes / bandwidth``) — the per-link reservation
  discipline applied to a shared fabric link, which is what makes incast
  on an oversubscribed uplink structural rather than hand-built.

Shared-hop cursors necessarily mix sources: they are exact when contending
posts carry a happens-before edge (barrier-phased traffic, single-threaded
drivers), and the runtime sanitizer audits cross-rank commits on them the
same way it audits cross-rank backlog reads.

One timeline is shared by all ranks of a :class:`~repro.mpi.world.World`
(it hangs off ``world.nic``); the :class:`~repro.tempi.progress.ProgressEngine`
reserves injection slots and commits ingestion batches on it when
``TempiConfig(progress="shared")`` is active, and skips the receive side
entirely under the ``nic="inject_only"`` ablation (the PR-3/PR-4
accounting, bit-for-bit).
"""

from __future__ import annotations

import threading
from itertools import chain
from operator import itemgetter
from typing import Any, Callable, Iterable, NamedTuple, Optional, Sequence

import numpy as np

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.topology import PathSpec, RailKey, ShareKey


class NicError(ValueError):
    """An impossible reservation was requested."""


class _BatchIndex(NamedTuple):
    """Derived per-batch indexing state a frozen-shape reserve reuses.

    Everything here is a pure function of the (validated) ``sources`` /
    ``dests`` / ``wire_s`` arrays, so rebuilding it per call for the same
    frozen arrays is waste: the Python index lists feed the scatter loops,
    ``wire_list`` the pending-registration sweep, and the two
    :func:`~operator.itemgetter` gathers read the port/link cursor dicts at
    C speed (they raise ``KeyError`` for first-contact cursors, which the
    kernel catches and answers with the defaulted slow gather).
    """

    src_list: list[int]
    dst_list: list[list[int]]
    key_list: list[tuple[int, int]]
    wire_list: list[list[float]]
    #: Gathers the per-source cursors (``_ports`` / ``_seqs``) in row order.
    src_get: Callable[..., Any]
    #: Gathers the per-link cursors in flattened row-major key order.
    link_get: Callable[..., Any]


def ledger_sum(values: Iterable[float], start: float = 0.0) -> float:
    """Fold ``values`` onto ``start``, strictly in the order supplied.

    The ledger helper simlint's SIM005 points at: float addition is not
    associative, so every accumulator total in the ledger/port loops is
    defined as a strict left fold over an *explicitly ordered* sequence.
    This performs the same adds in the same order as an open-coded
    ``total += value`` loop (bit-identical), but keeps the fold in one
    audited place so a future "optimisation" (``math.fsum``, vectorised
    reduction, reordering) cannot silently change priced totals.
    """
    total = start
    for value in values:
        total += value
    return total


class NicReservation(NamedTuple):
    """Outcome of placing one message on the timeline.

    A :class:`~typing.NamedTuple` — reservations are minted once per posted
    message on the simulator's hottest path, and tuples allocate in a single
    step with no per-instance ``__dict__``.
    """

    #: Virtual time the message starts occupying the port (>= ready time).
    start: float
    #: Virtual time the last byte lands at the destination.
    arrival: float
    #: Seconds the message waited on port/link occupancy beyond its ready time.
    stalled_s: float
    #: Serial wire seconds the message occupies (as passed to ``reserve``).
    wire_s: float = 0.0
    #: Per-source sequence number (the deterministic ingestion tie-break).
    seq: int = -1

    @property
    def stalled(self) -> bool:
        """True when NIC contention delayed the injection."""
        return self.stalled_s > 0.0


class BatchReservation(NamedTuple):
    """Outcome of :meth:`NicTimeline.reserve_batch`: one array per column.

    Every field is an ``(m, k)`` array — ``m`` sources by ``k`` messages per
    source — aligned with the ``dests`` matrix the batch was booked with.
    Row ``i``, column ``j`` holds exactly the values the scalar
    :class:`NicReservation` for message ``(i, j)`` would carry, in the
    row-major order the scalar loop would have booked them.
    """

    #: Virtual times the messages start occupying their ports, ``(m, k)``.
    start: np.ndarray
    #: Virtual times the last bytes land at the destinations, ``(m, k)``.
    arrival: np.ndarray
    #: Seconds each message waited beyond its ready time, ``(m, k)``.
    stalled_s: np.ndarray
    #: Serial wire seconds per message (as passed in), ``(m, k)``.
    wire_s: np.ndarray
    #: Per-source sequence numbers (int64), ``(m, k)``.
    seq: np.ndarray


class LinkRecord(NamedTuple):
    """One ledger entry: a message that occupied a link.

    The timeline itself stores these columnar, in a numpy struct-array ring
    (:class:`_LedgerRing`); this tuple is the row view handed back by
    :meth:`NicTimeline.ledger`.
    """

    source: int
    dest: int
    start: float
    arrival: float
    nbytes: int


class IngestRecord(NamedTuple):
    """One message's receive-side identity: who sent what, entering when.

    ``post_time`` is the virtual time the message entered the wire (the
    injection reservation's ``start``); ``arrival`` the time its last byte
    would land on an idle ingestion port; ``seq`` the sender's per-source
    sequence number.  ``(post_time, source, seq)`` is the deterministic
    cross-rank ordering every ingestion batch is served in — the tuple's own
    field order leads with exactly that triple.
    """

    post_time: float
    source: int
    seq: int
    wire_s: float
    arrival: float
    #: Receive-side ``(node, rail)`` NIC rail the landing also serialises
    #: on (``None`` for a dedicated per-rank NIC — the flat books).
    rail: Optional[RailKey] = None

    @property
    def key(self) -> tuple[float, int, int]:
        """The deterministic ingestion-service order of this message."""
        return (self.post_time, self.source, self.seq)


#: Columnar layout of the bounded reservation ledger: one struct per message,
#: ~40 B, versus a boxed ``LinkRecord`` dataclass plus five boxed fields.
_LEDGER_DTYPE = np.dtype(
    [
        ("source", np.int64),
        ("dest", np.int64),
        ("start", np.float64),
        ("arrival", np.float64),
        ("nbytes", np.int64),
    ]
)


class _LedgerRing:
    """A fixed-capacity numpy struct-array ring of link reservations.

    Appends overwrite the oldest slot in O(1); queries run vectorised over
    the resident window.  Peak residency is therefore ``capacity`` structs,
    however many messages the simulation posts — the compact replacement for
    the old per-message ``deque`` of frozen dataclasses.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, int(capacity))
        self._rows = np.zeros(self.capacity, dtype=_LEDGER_DTYPE)
        self._next = 0
        self._count = 0

    def append(self, source: int, dest: int, start: float, arrival: float, nbytes: int) -> None:
        """Write one reservation, overwriting the oldest beyond capacity."""
        self._rows[self._next] = (source, dest, start, arrival, nbytes)
        nxt = self._next + 1
        self._next = 0 if nxt == self.capacity else nxt
        if self._count < self.capacity:
            self._count += 1

    def extend(self, rows: np.ndarray) -> None:
        """Write a block of reservations, exactly as repeated :meth:`append`.

        ``rows`` is a struct array of :data:`_LEDGER_DTYPE`; the ring ends in
        the same state (contents, cursor and count) as appending the rows one
        by one, but the writes land as at most two numpy slice assignments.
        """
        total = len(rows)
        if total == 0:
            return
        keep = min(total, self.capacity)
        # Row j of the block lands at slot (next + j) % capacity; only the
        # last `capacity` rows survive, starting at the cursor below.
        first_slot = (self._next + total - keep) % self.capacity
        tail = min(keep, self.capacity - first_slot)
        self._rows[first_slot:first_slot + tail] = rows[total - keep:total - keep + tail]
        if keep > tail:
            self._rows[: keep - tail] = rows[total - keep + tail:]
        self._next = (self._next + total) % self.capacity
        self._count = min(self.capacity, self._count + total)

    def _window(self) -> np.ndarray:
        """The resident rows, oldest first (a copy only when wrapped)."""
        if self._count < self.capacity:
            return self._rows[: self._count]
        return np.roll(self._rows, -self._next)

    def in_flight(self, at: float, source: int | None = None) -> int:
        """Messages occupying the wire at virtual time ``at`` (vectorised)."""
        rows = self._rows[: self._count]
        mask = (rows["start"] <= at) & (at < rows["arrival"])
        if source is not None:
            mask &= rows["source"] == source
        return int(np.count_nonzero(mask))

    def records(self, source: int | None = None) -> list[LinkRecord]:
        """Row views of the resident window, oldest first."""
        return [
            LinkRecord(int(r["source"]), int(r["dest"]), float(r["start"]),
                       float(r["arrival"]), int(r["nbytes"]))
            for r in self._window()
            if source is None or int(r["source"]) == source
        ]

    def clear(self) -> None:
        """Forget every resident row."""
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Resident size of the backing array in bytes."""
        return int(self._rows.nbytes)


class NicTimeline:
    """Per-rank injection *and* ingestion ports plus a per-link ledger.

    Thread-safe: ranks run on threads and reserve concurrently.  Each
    injection port is only ever advanced by its owning (sending) rank and
    each ingestion port only by its owning (receiving) rank, so per-rank
    virtual timing stays deterministic; the lock merely keeps the shared
    dictionaries coherent.
    """

    def __init__(
        self,
        *,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        ledger_limit: int = 4096,
        pending_limit: int = 4096,
    ) -> None:
        if not 0 < wire_overlap <= 1:
            raise NicError(f"wire_overlap must be in (0, 1], got {wire_overlap}")
        if ledger_limit < 0:
            raise NicError(f"ledger_limit must be non-negative, got {ledger_limit}")
        if pending_limit < 0:
            raise NicError(f"pending_limit must be non-negative, got {pending_limit}")
        self.wire_overlap = wire_overlap
        self.ledger_limit = ledger_limit
        self.pending_limit = pending_limit
        self._ports: dict[int, float] = {}
        self._links: dict[tuple[int, int], float] = {}
        self._ingest_ports: dict[int, float] = {}
        self._seqs: dict[int, int] = {}
        #: Topology cursors, in their own dictionaries so the flat books
        #: (and their sorted fingerprints) never see topology keys.
        self._rail_ports: dict[RailKey, float] = {}
        self._ingest_rails: dict[RailKey, float] = {}
        self._shared_links: dict[ShareKey, float] = {}
        #: Posted-but-not-yet-ingested messages per destination (advisory:
        #: consumed at ingest time, pruned once drained, bounded).
        self._pending: dict[int, dict[tuple[float, int, int], IngestRecord]] = {}
        self._pending_total = 0
        self._ledger = _LedgerRing(ledger_limit or 1)
        self._lock = threading.Lock()
        self.reservations = 0
        self.stalls = 0
        self.stalled_s = 0.0
        self.ingests = 0
        self.ingest_stalls = 0
        self.ingest_stalled_s = 0.0
        #: Reservations delayed specifically by a shared NIC rail or a
        #: shared uplink bundle (beyond any port/link stall), and by how
        #: much — the structural-congestion signal ``bench_topology.py``
        #: reports.
        self.fabric_stalls = 0
        self.fabric_stalled_s = 0.0
        #: High-water mark of advisory pending records resident at once —
        #: with the bounded ring this is the timeline's whole variable-size
        #: footprint, which ``bench_sim_throughput.py`` reports.
        self.peak_pending = 0
        #: Frozen batch-shape memos: when a caller re-posts the *same*
        #: read-only arrays a fully validated vectorised batch already used,
        #: their contents cannot have changed, so validation and the derived
        #: Python index lists are reused instead of rebuilt (the steady state
        #: of an iterative exchange).  Identity-keyed, single slot each.
        self._batch_shape: Optional[
            tuple[np.ndarray, np.ndarray, np.ndarray, _BatchIndex]
        ] = None
        self._ingest_shape: Optional[
            tuple[np.ndarray, list[int], Callable[..., Any]]
        ] = None

    # ---------------------------------------------------------------- reserve
    def reserve(
        self,
        source: int,
        dest: int,
        ready: float,
        wire_s: float,
        nbytes: int = 0,
        *,
        ingest: bool = True,
        path: Optional[PathSpec] = None,
    ) -> NicReservation:
        """Place one message of ``wire_s`` seconds on the timeline (send side).

        The message starts at the latest of its ``ready`` time, the source's
        injection-port free time and the ``(source, dest)`` link free time.
        The port is occupied for ``wire_overlap * wire_s`` (messages to
        distinct peers pipeline); the link for the full ``wire_s`` (messages
        to the same peer serialise end to end).  The reservation carries the
        per-source ``seq`` that, with its start time, orders the message on
        the destination's ingestion port; ``ingest=False`` (the engine's
        inject-only books) skips the destination's advisory pending ledger —
        a message that will never be ingested must not look like receive-side
        backlog.

        With a resolved ``path`` the message additionally binds the path's
        NIC rail (advanced like a port) and every shared uplink bundle
        (occupied for ``nbytes / bundle bandwidth``, the per-link discipline
        on a shared fabric link); ``path=None`` runs the flat books above,
        byte-identically.  The receive-side mirror rail (``path.ingest_rail``)
        travels on the pending :class:`IngestRecord` and binds at
        :meth:`ingest` time.
        """
        if wire_s < 0:
            raise NicError(f"wire time must be non-negative, got {wire_s}")
        with self._lock:
            return self._reserve_one(source, dest, ready, wire_s, int(nbytes), ingest, path)

    def _reserve_one(
        self,
        source: int,
        dest: int,
        ready: float,
        wire_s: float,
        nbytes: int,
        ingest: bool,
        path: Optional[PathSpec],
    ) -> NicReservation:
        """One reservation with the lock already held (see :meth:`reserve`).

        The single place the scalar injection rules live: :meth:`reserve`
        wraps it per message and :meth:`reserve_batch`'s serialised fallback
        row-loops it, so the two paths cannot drift.
        """
        port = self._ports.get(source, 0.0)
        link_key = (source, dest)
        link = self._links.get(link_key, 0.0)
        start = max(ready, port, link)
        rail_key: Optional[RailKey] = None
        ingest_rail: Optional[RailKey] = None
        if path is not None:
            base = start
            rail_key = path.rail
            ingest_rail = path.ingest_rail
            if rail_key is not None:
                start = max(start, self._rail_ports.get(rail_key, 0.0))
            for share_key, _bandwidth in path.shared:
                start = max(start, self._shared_links.get(share_key, 0.0))
            if start > base:
                self.fabric_stalls += 1
                self.fabric_stalled_s += start - base
        arrival = start + wire_s
        self._ports[source] = start + self.wire_overlap * wire_s
        if rail_key is not None:
            self._rail_ports[rail_key] = start + self.wire_overlap * wire_s
        if path is not None:
            for share_key, bandwidth in path.shared:
                self._shared_links[share_key] = start + nbytes / bandwidth
        self._links[link_key] = arrival
        self.reservations += 1
        seq = self._seqs.get(source, 0)
        self._seqs[source] = seq + 1
        stalled = start - ready
        if stalled > 0:
            self.stalls += 1
            self.stalled_s += stalled
        if self.ledger_limit:
            # The struct-array ring overwrites the oldest row in O(1).
            self._ledger.append(source, dest, start, arrival, int(nbytes))
        if ingest and wire_s > 0 and self.pending_limit:
            self._register_pending(
                dest,
                IngestRecord(start, source, seq, wire_s, arrival, ingest_rail),
            )
        return NicReservation(
            start=start,
            arrival=arrival,
            stalled_s=max(0.0, stalled),
            wire_s=wire_s,
            seq=seq,
        )

    def next_seq(self, source: int) -> int:
        """Allocate one per-source sequence number (batched-send envelopes)."""
        with self._lock:
            seq = self._seqs.get(source, 0)
            self._seqs[source] = seq + 1
            return seq

    def _register_pending(self, dest: int, record: IngestRecord) -> None:
        """Track one posted arrival on the (bounded) advisory ledger."""
        pending = self._pending.setdefault(dest, {})
        if record.key not in pending:
            self._pending_total += 1
        pending[record.key] = record
        if len(pending) > self.pending_limit:
            # Drop the earliest-keyed record: it drains first, so losing it
            # only makes the (advisory) backlog estimate conservative.
            del pending[min(pending)]
            self._pending_total -= 1
        if self._pending_total > self.peak_pending:
            self.peak_pending = self._pending_total

    # ---------------------------------------------------------- batch booking
    def reserve_batch(
        self,
        sources: Sequence[int],
        dests: np.ndarray,
        ready: np.ndarray | float,
        wire_s: np.ndarray | float,
        nbytes: np.ndarray | int = 0,
        *,
        ingest: bool = True,
        paths: Optional[Sequence[Sequence[Optional[PathSpec]]]] = None,
    ) -> BatchReservation:
        """Book a whole exchange — ``m`` sources × ``k`` messages — at once.

        Defined as *exactly* the row-major scalar sequence::

            for i, source in enumerate(sources):
                for j in range(k):
                    reserve(source, dests[i, j], ready[i, j], wire_s[i, j],
                            nbytes[i, j], ingest=ingest, path=paths[i][j])

        returning the per-message outcomes stacked into a
        :class:`BatchReservation`.  Every cursor, counter, ledger row and
        pending record lands bit-identical to that loop — the batch is a
        *pricing kernel*, not a different model.

        When the batch is flat (no paths), sources are distinct and each
        row's destinations are distinct, the per-source recurrences are
        independent, so the booking runs as ``k`` vectorised column steps
        over all ``m`` rows — elementwise ``maximum``/multiply-add mirrors
        of the scalar port/link rules, which numpy evaluates with the same
        IEEE-754 double operations the scalar path performs.  Any coupling
        the columns cannot express (shared rails or uplink ledgers, repeated
        sources, repeated in-row destinations) falls back to serialising the
        rows through :meth:`_reserve_one` under one lock acquisition — still
        the exact scalar semantics, minus the per-message locking.

        ``ready``/``wire_s``/``nbytes`` broadcast against ``dests``'s
        ``(m, k)`` shape; ``paths``, when given, is an ``m × k`` nested
        sequence of resolved :class:`~repro.machine.topology.PathSpec`.
        """
        cached_shape = self._batch_shape
        if (
            paths is None
            and cached_shape is not None
            and sources is cached_shape[0]
            and dests is cached_shape[1]
            and wire_s is cached_shape[2]
        ):
            # Frozen-shape fast lane: these exact read-only arrays already
            # passed validation and priced vectorised, and read-only contents
            # cannot have changed — skip both and reuse the index lists.
            src, dst, wire = cached_shape[0], cached_shape[1], cached_shape[2]
            m, k = dst.shape
            rdy = np.ascontiguousarray(
                np.broadcast_to(np.asarray(ready, dtype=np.float64), (m, k))
            )
            nb = np.ascontiguousarray(
                np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (m, k))
            )
            out = BatchReservation(
                np.empty((m, k)), np.empty((m, k)), np.empty((m, k)),
                wire, np.empty((m, k), dtype=np.int64),
            )
            with self._lock:
                return self._reserve_batch_vector(
                    out, src, dst, rdy, wire, nb, ingest, cached_shape[3]
                )
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(dests, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 2 or dst.shape[0] != src.shape[0]:
            raise NicError(
                f"batch shapes must be sources (m,) and dests (m, k), got "
                f"{src.shape} and {dst.shape}"
            )
        m, k = dst.shape
        rdy = np.ascontiguousarray(
            np.broadcast_to(np.asarray(ready, dtype=np.float64), (m, k))
        )
        wire_arr = np.asarray(wire_s, dtype=np.float64)
        wire = (
            wire_arr
            if wire_arr.shape == (m, k) and wire_arr.flags.c_contiguous
            else np.ascontiguousarray(np.broadcast_to(wire_arr, (m, k)))
        )
        nb = np.ascontiguousarray(
            np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (m, k))
        )
        if np.any(wire < 0):
            raise NicError("wire time must be non-negative for every message")
        if paths is not None and (
            len(paths) != m or any(len(row) != k for row in paths)
        ):
            raise NicError(f"paths must be an {m} x {k} nested sequence")
        shape = BatchReservation(
            np.empty((m, k)), np.empty((m, k)), np.empty((m, k)),
            wire, np.empty((m, k), dtype=np.int64),
        )
        if m == 0 or k == 0:
            return shape
        routed = paths is not None and any(
            spec is not None for row in paths for spec in row
        )
        with self._lock:
            src_list = src.tolist()
            vectorizable = not routed and len(set(src_list)) == m
            if vectorizable and k > 1:
                in_row = np.sort(dst, axis=1)
                if bool(np.any(in_row[:, 1:] == in_row[:, :-1])):
                    vectorizable = False
            if not vectorizable:
                return self._reserve_batch_serial(
                    shape, src, dst, rdy, wire, nb, ingest,
                    paths if routed else None,
                )
            dst_list = dst.tolist()
            # One key list serves both the cursor gather and the scatter in
            # the kernel.
            key_list = [(s, d) for s, row in zip(src_list, dst_list) for d in row]
            index = _BatchIndex(
                src_list, dst_list, key_list, wire.tolist(),
                itemgetter(*src_list), itemgetter(*key_list),
            )
            if (
                paths is None
                and src is sources
                and dst is dests
                and wire is wire_s
                and not src.flags.writeable
                and not dst.flags.writeable
                and not wire.flags.writeable
            ):
                self._batch_shape = (src, dst, wire, index)
            return self._reserve_batch_vector(shape, src, dst, rdy, wire, nb, ingest, index)

    def _reserve_batch_serial(
        self,
        out: BatchReservation,
        src: np.ndarray,
        dst: np.ndarray,
        rdy: np.ndarray,
        wire: np.ndarray,
        nb: np.ndarray,
        ingest: bool,
        paths: Optional[Sequence[Sequence[Optional[PathSpec]]]],
    ) -> BatchReservation:
        """Row-loop a coupled batch through the scalar rules, lock held.

        The fallback for batches the column scan cannot express (shared
        rails/uplinks, repeated sources, repeated in-row destinations):
        exactly the scalar loop, amortising only the lock acquisition.
        """
        m, k = dst.shape
        for i in range(int(m)):
            source = int(src[i])
            row = paths[i] if paths is not None else None
            for j in range(int(k)):
                res = self._reserve_one(
                    source, int(dst[i, j]), float(rdy[i, j]), float(wire[i, j]),
                    int(nb[i, j]), ingest, row[j] if row is not None else None,
                )
                out.start[i, j] = res.start
                out.arrival[i, j] = res.arrival
                out.stalled_s[i, j] = res.stalled_s
                out.seq[i, j] = res.seq
        return out

    def _reserve_batch_vector(
        self,
        out: BatchReservation,
        src: np.ndarray,
        dst: np.ndarray,
        rdy: np.ndarray,
        wire: np.ndarray,
        nb: np.ndarray,
        ingest: bool,
        index: _BatchIndex,
    ) -> BatchReservation:
        """Price a flat, decoupled batch as ``k`` column steps, lock held.

        Rows (sources) are independent: each source's port recurrence
        ``start_j = max(ready_j, port, link_j); port = start_j + overlap *
        wire_j`` advances elementwise across all rows per column, performing
        the same double-precision operations the scalar loop performs per
        message — hence bit-identical cursors.  Stall seconds fold in
        row-major order through :func:`ledger_sum`, ledger rows block-append
        through :meth:`_LedgerRing.extend`, and pending records register in
        row-major order, so every counter and fingerprint matches the loop.
        """
        m, k = dst.shape
        src_list, dst_list, key_list = index[:3]
        links = self._links
        try:
            # The itemgetter gathers read every cursor in one C call; a
            # KeyError means some cursor has never been touched, answered
            # by the defaulted per-key gather below.
            ports0 = np.asarray(index.src_get(self._ports), dtype=np.float64).reshape(m)
        except KeyError:
            ports0 = np.fromiter(
                (self._ports.get(s, 0.0) for s in src_list), dtype=np.float64, count=m
            )
        try:
            link0 = np.asarray(index.link_get(links), dtype=np.float64).reshape(m, k)
        except KeyError:
            link0 = np.fromiter(
                (links.get(kk, 0.0) for kk in key_list), dtype=np.float64, count=m * k
            ).reshape(m, k)
        starts = out.start
        overlap = self.wire_overlap
        port = ports0
        for j in range(k):
            col = np.maximum(np.maximum(rdy[:, j], port), link0[:, j])
            starts[:, j] = col
            port = col + overlap * wire[:, j]
        arrivals = np.add(starts, wire, out=out.arrival)
        for s, free in zip(src_list, port.tolist()):
            self._ports[s] = free
        arr_list = arrivals.tolist()
        links.update(zip(key_list, chain.from_iterable(arr_list)))
        self.reservations += m * k
        try:
            seq0 = np.asarray(index.src_get(self._seqs), dtype=np.int64).reshape(m)
        except KeyError:
            seq0 = np.fromiter(
                (self._seqs.get(s, 0) for s in src_list), dtype=np.int64, count=m
            )
        seqs = np.add(seq0[:, None], np.arange(k, dtype=np.int64)[None, :], out=out.seq)
        for s, base in zip(src_list, seq0.tolist()):
            self._seqs[s] = base + k
        stalled = starts - rdy
        positive = stalled > 0
        self.stalls += int(np.count_nonzero(positive))
        # Row-major fold of the positive stall seconds — the same adds in
        # the same order as the scalar loop's accumulation.
        self.stalled_s = ledger_sum(stalled[positive].tolist(), start=self.stalled_s)
        if self.ledger_limit:
            rows = np.empty(m * k, dtype=_LEDGER_DTYPE)
            rows["source"] = np.repeat(src, k)
            rows["dest"] = dst.ravel()
            rows["start"] = starts.ravel()
            rows["arrival"] = arrivals.ravel()
            rows["nbytes"] = nb.ravel()
            self._ledger.extend(rows)
        if ingest and self.pending_limit:
            # Inlined row-major _register_pending loop.  Within one batch the
            # advisory total only grows (evictions cancel an insert in the
            # same step), so the per-insert high-water check of the scalar
            # path reduces to one final comparison — bit-identical books.
            start_list = starts.tolist()
            wire_list = index.wire_list
            seq_list = seqs.tolist()
            pending_book = self._pending
            limit = self.pending_limit
            pending_count = self._pending_total
            # tuple.__new__ builds the record directly from the field tuple —
            # the same tuple the NamedTuple's generated __new__ would build
            # (rail explicitly None), minus one Python call per message.
            record_new, record_cls = tuple.__new__, IngestRecord
            for i, s in enumerate(src_list):
                # zip walks the five row lists in C, in the same row-major
                # message order the indexed loop visited.
                for st, d, w, a, sq in zip(
                    start_list[i], dst_list[i], wire_list[i], arr_list[i], seq_list[i]
                ):
                    if w <= 0:
                        continue
                    bucket = pending_book.get(d)
                    if bucket is None:
                        bucket = pending_book[d] = {}
                    key = (st, s, sq)
                    if key not in bucket:
                        pending_count += 1
                    bucket[key] = record_new(record_cls, (st, s, sq, w, a, None))
                    if len(bucket) > limit:
                        del bucket[min(bucket)]
                        pending_count -= 1
            self._pending_total = pending_count
            if pending_count > self.peak_pending:
                self.peak_pending = pending_count
        np.maximum(stalled, 0.0, out=out.stalled_s)
        return out

    # ----------------------------------------------------------------- ingest
    def ingest(self, dest: int, records: Sequence[IngestRecord]) -> list[float]:
        """Commit one batch of arrivals to ``dest``'s ingestion port.

        The batch is served in the deterministic ``(post_time, source, seq)``
        order whatever order the caller collected the envelopes in; each
        message's landing window is aligned against the port cursor by the
        mirror of the injection rule (see the module docstring), so arrivals
        already spaced by their senders' ports pass through undelayed while
        incast bursts serialise.  Returns the (possibly delayed) landing time
        of each record **in input order**.  Zero-wire records pass through
        untouched.  Called by the receiving rank only — commits happen in
        receiver program order, which keeps the cursor deterministic.
        """
        with self._lock:
            return self._ingest_locked(dest, records)

    def _ingest_locked(self, dest: int, records: Sequence[IngestRecord]) -> list[float]:
        """One ingestion batch with the lock already held (see :meth:`ingest`).

        The single place the scalar ingestion rules live: :meth:`ingest`
        wraps it per batch and :meth:`ingest_batch_vec`'s serialised fallback
        row-loops it, so the two paths cannot drift.
        """
        landings = {record.key: record.arrival for record in records}
        port = self._ingest_ports.get(dest, 0.0)
        stalls: list[float] = []
        for record in sorted(
            (r for r in records if r.wire_s > 0), key=lambda r: r.key
        ):
            # landing = begin + wire with begin = max(post_time, port) —
            # written so an undelayed landing equals the arrival
            # *exactly*, and using the true wire-entry time rather than
            # re-deriving it as arrival - wire (no float re-rounding).
            landing = max(record.arrival, port + record.wire_s)
            if record.rail is not None:
                # The shared receive-side rail mirrors the port rule in
                # its own cursor; the flat books never reach this branch.
                rail_port = self._ingest_rails.get(record.rail, 0.0)
                landing = max(landing, rail_port + record.wire_s)
                self._ingest_rails[record.rail] = (
                    max(record.post_time, rail_port)
                    + self.wire_overlap * record.wire_s
                )
            port = max(record.post_time, port) + self.wire_overlap * record.wire_s
            self.ingests += 1
            stalled = landing - record.arrival
            if stalled > 0:
                self.ingest_stalls += 1
                stalls.append(stalled)
            landings[record.key] = landing
            if self._pending.get(dest, {}).pop(record.key, None) is not None:
                self._pending_total -= 1
        # Fold the stall seconds in batch order through the ledger helper
        # — the same adds in the same order as accumulating in the loop.
        self.ingest_stalled_s = ledger_sum(stalls, start=self.ingest_stalled_s)
        self._ingest_ports[dest] = port
        # Receiver-program-order housekeeping (the only deterministic
        # place to prune): pending records that would have fully drained
        # behind the committed cursor were consumed on another path (a
        # system-path receive of a plan-posted message) and can no longer
        # delay anything this port will serve.
        pending = self._pending.get(dest)
        if pending:
            stale = [
                key
                for key, record in pending.items()
                if record.arrival + self.wire_overlap * record.wire_s <= port
            ]
            for key in stale:
                del pending[key]
            self._pending_total -= len(stale)
        return [landings[record.key] for record in records]

    def ingest_batch_vec(
        self,
        dests: Sequence[int],
        post_time: np.ndarray,
        sources: np.ndarray,
        seqs: np.ndarray,
        wire_s: np.ndarray,
        arrival: np.ndarray,
    ) -> np.ndarray:
        """Commit ``m`` destinations' arrival batches — ``k`` each — at once.

        The columnar mirror of calling :meth:`ingest` once per destination
        in input order, with destination ``i``'s records taken column-wise
        from row ``i`` of the ``(m, k)`` field arrays (rail-free records
        only — routed landings go through :meth:`ingest`).  Returns the
        ``(m, k)`` landing times in input column order, and leaves ports,
        counters and the pending ledger bit-identical to the scalar calls.

        When destinations are distinct, every wire time is positive and no
        row holds duplicate ``(post_time, source, seq)`` keys, each row is
        lexsorted into the deterministic service order and the port
        recurrence ``landing = max(arrival, port + wire); port =
        max(post_time, port) + overlap * wire`` advances as ``k`` vectorised
        column steps — the same double operations as the scalar serve loop.
        Anything else (an incast sharing a destination row, zero-wire
        passthroughs, colliding keys) falls back to serialising rows through
        :meth:`_ingest_locked` under the one lock acquisition.
        """
        dst = np.asarray(dests, dtype=np.int64)
        post = np.ascontiguousarray(np.asarray(post_time, dtype=np.float64))
        src = np.asarray(sources, dtype=np.int64)
        seq = np.asarray(seqs, dtype=np.int64)
        wire = np.ascontiguousarray(np.asarray(wire_s, dtype=np.float64))
        arr = np.ascontiguousarray(np.asarray(arrival, dtype=np.float64))
        if dst.ndim != 1 or post.ndim != 2 or post.shape[0] != dst.shape[0]:
            raise NicError(
                f"batch shapes must be dests (m,) and fields (m, k), got "
                f"{dst.shape} and {post.shape}"
            )
        m, k = post.shape
        for field in (src, seq, wire, arr):
            if field.shape != (m, k):
                raise NicError(f"ingest batch fields must all be (m, k)={m, k}")
        landings = np.empty((m, k), dtype=np.float64)
        if m == 0 or k == 0:
            return landings
        with self._lock:
            cached_dests = self._ingest_shape
            if cached_dests is not None and dests is cached_dests[0]:
                # Frozen-shape fast lane: the same read-only destination
                # array vectorised before, so uniqueness holds and the
                # Python list and cursor gather are reused.
                dst_list = cached_dests[1]
                port_get: Optional[Callable[..., Any]] = cached_dests[2]
                unique = True
            else:
                dst_list = dst.tolist()
                port_get = None
                unique = len(set(dst_list)) == m
                if (
                    unique
                    and dst is dests
                    and not dst.flags.writeable
                ):
                    port_get = itemgetter(*dst_list)
                    self._ingest_shape = (dst, dst_list, port_get)
            if unique and bool(np.all(wire > 0)):
                order = np.lexsort((seq, src, post), axis=-1)
                post_sorted = np.take_along_axis(post, order, axis=1)
                src_sorted = np.take_along_axis(src, order, axis=1)
                seq_sorted = np.take_along_axis(seq, order, axis=1)
                if k == 1 or not bool(
                    np.any(
                        (post_sorted[:, 1:] == post_sorted[:, :-1])
                        & (src_sorted[:, 1:] == src_sorted[:, :-1])
                        & (seq_sorted[:, 1:] == seq_sorted[:, :-1])
                    )
                ):
                    return self._ingest_batch_vector(
                        landings, dst_list, order, post_sorted, src_sorted,
                        seq_sorted,
                        np.take_along_axis(wire, order, axis=1),
                        np.take_along_axis(arr, order, axis=1),
                        port_get,
                    )
            for i, dest in enumerate(dst_list):
                records = [
                    IngestRecord(
                        float(post[i, j]), int(src[i, j]), int(seq[i, j]),
                        float(wire[i, j]), float(arr[i, j]),
                    )
                    for j in range(k)
                ]
                landings[i] = self._ingest_locked(dest, records)
            return landings

    def _ingest_batch_vector(
        self,
        landings: np.ndarray,
        dst_list: list[int],
        order: np.ndarray,
        post_sorted: np.ndarray,
        src_sorted: np.ndarray,
        seq_sorted: np.ndarray,
        wire_sorted: np.ndarray,
        arr_sorted: np.ndarray,
        port_get: Optional[Callable[..., Any]] = None,
    ) -> np.ndarray:
        """Serve decoupled ingestion rows as column steps, lock held.

        Rows (destinations) are independent and arrive pre-sorted into the
        deterministic ``(post_time, source, seq)`` service order; the port
        recurrence advances elementwise per column exactly as the scalar
        serve loop does per record, then landings scatter back to input
        column order through the sort permutation.
        """
        m, k = post_sorted.shape
        port = None
        if port_get is not None:
            try:
                port = np.asarray(port_get(self._ingest_ports), dtype=np.float64).reshape(m)
            except KeyError:
                port = None
        if port is None:
            port = np.fromiter(
                (self._ingest_ports.get(d, 0.0) for d in dst_list),
                dtype=np.float64,
                count=m,
            )
        served = np.empty((m, k), dtype=np.float64)
        overlap = self.wire_overlap
        for j in range(k):
            col_wire = wire_sorted[:, j]
            served[:, j] = np.maximum(arr_sorted[:, j], port + col_wire)
            port = np.maximum(post_sorted[:, j], port) + overlap * col_wire
        self.ingests += m * k
        stalled = served - arr_sorted
        positive = stalled > 0
        self.ingest_stalls += int(np.count_nonzero(positive))
        # Row-major fold over the service-ordered stalls — the same adds
        # in the same order as the per-destination scalar batches.
        self.ingest_stalled_s = ledger_sum(
            stalled[positive].tolist(), start=self.ingest_stalled_s
        )
        post_list = post_sorted.tolist()
        src_list = src_sorted.tolist()
        seq_list = seq_sorted.tolist()
        pending_book = self._pending
        ingest_ports = self._ingest_ports
        dropped = 0
        for i, (dest, free) in enumerate(zip(dst_list, port.tolist())):
            row_pending = pending_book.get(dest)
            if row_pending:
                # zip materialises each (post, source, seq) key tuple in C,
                # in the same sorted service order as the indexed loop.
                for pkey in zip(post_list[i], src_list[i], seq_list[i]):
                    if row_pending.pop(pkey, None) is not None:
                        dropped += 1
            ingest_ports[dest] = free
            if row_pending:
                stale = [
                    key
                    for key, record in row_pending.items()
                    if record.arrival + overlap * record.wire_s <= free
                ]
                for key in stale:
                    del row_pending[key]
                dropped += len(stale)
        self._pending_total -= dropped
        np.put_along_axis(landings, order, served, axis=1)
        return landings

    def ingest_preview(self, dest: int, arrival: float, wire_s: float) -> float:
        """The landing time a message *would* get as the next commit.

        A non-committing read of ``dest``'s ingestion cursor (receiver state
        only, hence deterministic) — the arrival hint ``Test``/``Waitany``
        probes see before the receive actually completes.
        """
        if wire_s <= 0:
            return arrival
        with self._lock:
            port = self._ingest_ports.get(dest, 0.0)
        return max(arrival, port + wire_s)

    # ------------------------------------------------------------- inspection
    def port_free_at(self, rank: int) -> float:
        """Virtual time rank ``rank``'s injection port next frees up."""
        with self._lock:
            return self._ports.get(rank, 0.0)

    def link_free_at(self, source: int, dest: int) -> float:
        """Virtual time the ``(source, dest)`` link next frees up."""
        with self._lock:
            return self._links.get((source, dest), 0.0)

    def rail_free_at(self, rail: RailKey) -> float:
        """Virtual time the shared injection rail ``(node, rail)`` frees up."""
        with self._lock:
            return self._rail_ports.get(rail, 0.0)

    def ingest_rail_free_at(self, rail: RailKey) -> float:
        """Virtual time the shared receive-side rail ``(node, rail)`` frees up."""
        with self._lock:
            return self._ingest_rails.get(rail, 0.0)

    def shared_free_at(self, key: ShareKey) -> float:
        """Virtual time the shared uplink bundle ``key`` frees up.

        A cross-rank read by construction — the bundle is shared fabric —
        so pricing against it is exact only under a happens-before edge to
        the contending posts, exactly like :meth:`ingest_backlog`.
        """
        with self._lock:
            return self._shared_links.get(key, 0.0)

    def ingest_free_at(self, rank: int) -> float:
        """Virtual time rank ``rank``'s ingestion port next frees up.

        Reflects *committed* ingestion only; :meth:`ingest_backlog` folds the
        posted-but-not-yet-ingested traffic in as well.
        """
        with self._lock:
            return self._ingest_ports.get(rank, 0.0)

    def ingest_backlog(self, dest: int, now: float = 0.0) -> float:
        """Seconds of queued ingestion converging on ``dest``, as of ``now``.

        Replays the posted-but-not-yet-ingested arrivals (in key order) over
        the committed ingestion cursor and reports how far past ``now`` the
        port would stay busy.  Only records whose ``post_time`` has passed on
        the caller's clock participate — a rank can only know about traffic
        from its virtual past, which is also what keeps the signal
        reproducible for queries with a happens-before edge to the posts (a
        barrier away).  This is the **advisory** hot-peer signal the
        contention-aware selector prices: exact under that edge, conservative
        when records were capped.  The query is a pure read — pending records
        are consumed at :meth:`ingest` time (receiver program order), never
        by another rank's clock, so concurrent queries cannot disturb each
        other.
        """
        with self._lock:
            port = self._ingest_ports.get(dest, 0.0)
            pending = self._pending.get(dest)
            if pending:
                for key in sorted(pending):
                    record = pending[key]
                    if record.post_time > now:
                        continue
                    begin = max(record.arrival - record.wire_s, port)
                    port = begin + self.wire_overlap * record.wire_s
            return max(0.0, port - now)

    def pending_ingest(self, dest: int) -> int:
        """Posted-but-not-yet-ingested messages for ``dest`` (tests, stats)."""
        with self._lock:
            return len(self._pending.get(dest, {}))

    def pending_records(self, dest: int) -> list[IngestRecord]:
        """Key-ordered snapshot of the advisory pending ledger for ``dest``.

        A pure read over exactly the records :meth:`ingest_backlog` replays —
        the runtime sanitizer walks it to audit cross-rank backlog reads for
        a happens-before edge, and tests introspect it.
        """
        with self._lock:
            pending = self._pending.get(dest)
            if not pending:
                return []
            return [pending[key] for key in sorted(pending)]

    def state_fingerprint(self, rank: Optional[int] = None) -> int:
        """Hash of the priced ledger state, optionally scoped to one rank.

        With ``rank=None`` the digest covers every port/link/sequence cursor
        (including the topology rail and shared-uplink cursors) and the
        occupancy counters.  With a rank it covers only the state that
        rank's *own* calls advance — its injection and ingestion cursors,
        its outgoing links, its sequence counter.  That scope is what the
        runtime sanitizer checksums around selector pricing calls:
        concurrent traffic from other ranks only ever touches *their* keys
        (send side source-scoped, receive side receiver-committed), so the
        rank-scoped digest is immune to scheduling noise while any mutation
        a pricing call leaks onto its own rank's state changes it.  Rail and
        uplink cursors are shared across ranks by construction, so they stay
        out of the rank-scoped digest.
        """
        with self._lock:
            if rank is None:
                return hash(
                    (
                        tuple(sorted(self._ports.items())),
                        tuple(sorted(self._links.items())),
                        tuple(sorted(self._ingest_ports.items())),
                        tuple(sorted(self._seqs.items())),
                        tuple(sorted(self._rail_ports.items())),
                        tuple(sorted(self._ingest_rails.items())),
                        tuple(sorted(self._shared_links.items())),
                        self._pending_total,
                        self.reservations,
                        self.ingests,
                    )
                )
            links = tuple(
                sorted(
                    (key, value)
                    for key, value in self._links.items()
                    if key[0] == rank
                )
            )
            return hash(
                (
                    self._ports.get(rank, 0.0),
                    links,
                    self._ingest_ports.get(rank, 0.0),
                    self._seqs.get(rank, 0),
                )
            )

    def in_flight(self, at: float, *, source: int | None = None) -> int:
        """Ledger query: messages occupying the wire at virtual time ``at``."""
        with self._lock:
            return self._ledger.in_flight(at, source)

    def ledger(self, *, source: int | None = None) -> list[LinkRecord]:
        """A snapshot of the (bounded) reservation ledger, oldest first."""
        with self._lock:
            return self._ledger.records(source)

    def ledger_len(self) -> int:
        """Resident ledger rows (bounded by ``ledger_limit``)."""
        with self._lock:
            return len(self._ledger)

    def ledger_nbytes(self) -> int:
        """Resident bytes of the ledger's backing struct-array ring."""
        with self._lock:
            return self._ledger.nbytes

    # -------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Forget all occupancy (between benchmark repetitions)."""
        with self._lock:
            self._ports.clear()
            self._links.clear()
            self._ingest_ports.clear()
            self._seqs.clear()
            self._rail_ports.clear()
            self._ingest_rails.clear()
            self._shared_links.clear()
            self._pending.clear()
            self._pending_total = 0
            self._ledger.clear()
            self.reservations = 0
            self.stalls = 0
            self.stalled_s = 0.0
            self.ingests = 0
            self.ingest_stalls = 0
            self.ingest_stalled_s = 0.0
            self.fabric_stalls = 0
            self.fabric_stalled_s = 0.0
            self.peak_pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Summarise port/link/counter state for debugging."""
        return (
            f"<NicTimeline ports={len(self._ports)} links={len(self._links)} "
            f"reservations={self.reservations} stalls={self.stalls} "
            f"ingests={self.ingests} ingest_stalls={self.ingest_stalls}>"
        )
