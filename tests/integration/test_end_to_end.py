"""End-to-end integration tests: the paper's headline claims, in miniature.

These tests exercise the full stack — application code written against the
MPI surface, the TEMPI interposer, the simulated CUDA runtime, the network
model — and assert the qualitative results of the evaluation section:

* equivalent datatype constructions behave identically under TEMPI (Fig. 7);
* MPI_Pack on strided GPU data is orders of magnitude faster (Fig. 8);
* model-driven method selection picks the faster of one-shot/device (Fig. 11b);
* the halo exchange speeds up while remaining correct (Fig. 12).
"""

import numpy as np
import pytest

from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange, aggregate_timings
from repro.bench.workloads import fig7_configurations
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import TempiCommunicator, interpose


class TestEquivalentConstructionsBehaveIdentically:
    def test_all_fig7_constructions_pack_identically(self, summit_model):
        """Whatever construction the application used, TEMPI packs the same bytes."""
        geometry = fig7_configurations()[0].geometry
        configs = [c for c in fig7_configurations() if c.geometry == geometry]
        world = World(1)
        ctx = world.contexts[0]
        comm = interpose(ctx, model=summit_model)
        source = ctx.gpu.malloc(geometry.alloc_bytes)
        source.data[:] = np.random.default_rng(11).integers(
            0, 256, source.nbytes, dtype=np.uint8
        )
        packed_results = []
        for config in configs:
            datatype = comm.Type_commit(config.build())
            out = ctx.gpu.malloc(datatype.size)
            comm.Pack((source, 1, datatype), out, 0)
            packed_results.append(out.data.copy())
        reference = packed_results[0]
        assert all(np.array_equal(reference, other) for other in packed_results[1:])

    def test_kernel_parameters_identical_across_constructions(self, summit_model):
        world = World(1)
        comm = interpose(world.contexts[0], model=summit_model)
        geometry = fig7_configurations()[0].geometry
        specs = set()
        for config in fig7_configurations():
            if config.geometry != geometry:
                continue
            datatype = comm.Type_commit(config.build())
            handler = TempiCommunicator.handler_of(datatype)
            specs.add((handler.packer.block.counts, handler.packer.kernel.word_size))
        assert len(specs) == 1


class TestPackSpeedupShape:
    @pytest.mark.parametrize("block_bytes,min_speedup", [(1, 1000), (8, 200), (128, 10)])
    def test_speedup_grows_as_blocks_shrink(self, summit_model, block_bytes, min_speedup):
        """Fig. 8: the baseline pays one memcpy per block, so smaller blocks
        mean larger TEMPI speedups."""
        object_bytes = 256 * 1024

        def measure(use_tempi):
            world = World(1)
            ctx = world.contexts[0]
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            nblocks = object_bytes // block_bytes
            t = comm.Type_commit(Type_vector(nblocks, block_bytes, 512, BYTE))
            src = ctx.gpu.malloc(t.extent)
            dst = ctx.gpu.malloc(t.size)
            start = ctx.clock.now
            comm.Pack((src, 1, t), dst, 0)
            return ctx.clock.now - start

        speedup = measure(False) / measure(True)
        assert speedup > min_speedup


class TestMethodSelectionAccuracy:
    def test_auto_matches_best_forced_method(self, summit_model):
        """Fig. 11b: the model-based selection tracks the faster forced method."""
        object_bytes, block = 1024 * 1024, 8
        times = {}
        for label, method in (
            ("oneshot", PackMethod.ONESHOT),
            ("device", PackMethod.DEVICE),
            ("auto", PackMethod.AUTO),
        ):
            def program(ctx, method=method):
                comm = interpose(ctx, TempiConfig(method=method), model=summit_model)
                nblocks = object_bytes // block
                t = comm.Type_commit(Type_vector(nblocks, block, 2 * block, BYTE))
                buf = ctx.gpu.malloc(t.extent)
                # warm the resource cache so steady-state latency is measured
                if ctx.rank == 0:
                    comm.Send((buf, 1, t), dest=1, tag=1)
                    start = ctx.clock.now
                    comm.Send((buf, 1, t), dest=1, tag=2)
                    return ctx.clock.now - start
                comm.Recv((buf, 1, t), source=0, tag=1)
                start = ctx.clock.now
                comm.Recv((buf, 1, t), source=0, tag=2)
                return ctx.clock.now - start

            results = World(2, ranks_per_node=1).run(program)
            times[label] = max(results)

        best_forced = min(times["oneshot"], times["device"])
        worst_forced = max(times["oneshot"], times["device"])
        # auto should be close to the better method, never close to the worse one
        assert times["auto"] <= best_forced * 1.2
        assert times["auto"] < worst_forced


class TestHaloExchangeEndToEnd:
    def test_tempi_accelerates_and_preserves_correctness(self, summit_model):
        spec = HaloSpec(nx=6, ny=6, nz=6, radius=2, fields=2, bytes_per_field=4)

        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            app = HaloExchange(ctx, comm, spec)
            timings = app.run(iterations=2, verify=True)
            return aggregate_timings(timings)

        baseline = World(4, ranks_per_node=2).run(program, False)
        accelerated = World(4, ranks_per_node=2).run(program, True)
        base_total = max(t.total_s for t in baseline)
        fast_total = max(t.total_s for t in accelerated)
        assert base_total / fast_total > 2

    def test_interposition_is_transparent_to_application_code(self, summit_model):
        """The same HaloExchange source runs against either communicator."""
        spec = HaloSpec(nx=5, ny=5, nz=5, radius=1, fields=1, bytes_per_field=8)

        def program(ctx):
            plain = HaloExchange(ctx, ctx.comm, spec)
            plain.run(iterations=1, verify=True)
            wrapped = HaloExchange(ctx, interpose(ctx, model=summit_model), spec)
            wrapped.run(iterations=1, verify=True)
            return True

        assert all(World(2, ranks_per_node=2).run(program))
