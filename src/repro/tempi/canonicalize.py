"""Type canonicalisation (Sec. 3.2).

Semantically equivalent MPI datatypes translate to different Type trees; four
transformations, applied repeatedly until none of them changes the tree,
reduce them to a canonical form:

``dense_folding``
    A stream whose stride equals its dense child's extent is a single larger
    dense run (Alg. 2, Fig. 3).
``stream_elision``
    A stream of one element adds no structure and is removed (Alg. 3,
    Fig. 4).  This implementation also elides a *parent* stream whose own
    count is one, which makes e.g. ``vector(1, n, 1, T)`` and
    ``contiguous(n, T)`` canonicalise identically.
``stream_flatten``
    Nested streams whose strides chain exactly (parent stride equals child
    count × child stride) collapse into one longer stream (Alg. 4, Fig. 5).
``sort_streams``
    Stream levels are ordered by decreasing stride so that row-of-column and
    column-of-row constructions agree (Sec. 3.2.4).

All passes preserve the set of bytes the type describes; the property-based
tests check exactly that invariant against the MPI type map.
"""

from __future__ import annotations

from typing import Tuple

from repro.tempi.ir import DenseData, Type

#: Safety bound on the fixed-point iteration; in practice a handful of passes
#: suffice (each pass strictly reduces depth or orders the chain).
MAX_PASSES = 64


# --------------------------------------------------------------------------- #
# Individual passes.  Each returns (possibly new root, changed flag).
# --------------------------------------------------------------------------- #

def dense_folding(node: Type) -> Tuple[Type, bool]:
    """Fold ``Stream -> Dense`` pairs whose stride equals the dense extent."""
    changed = False
    if node.child is not None:
        node.child, child_changed = dense_folding(node.child)
        changed = changed or child_changed
    if node.is_stream and node.child is not None and node.child.is_dense:
        stream = node.data
        dense_child = node.child.data
        if dense_child.extent == stream.stride:
            folded = DenseData(
                offset=stream.offset + dense_child.offset,
                extent=stream.count * stream.stride,
            )
            return Type(folded), True
    return node, changed


def stream_elision(node: Type) -> Tuple[Type, bool]:
    """Remove streams of a single element (child streams and unit parents)."""
    changed = False
    if node.child is not None:
        node.child, child_changed = stream_elision(node.child)
        changed = changed or child_changed
    # Child stream of count 1: splice it out, keeping its offset.
    if (
        node.is_stream
        and node.child is not None
        and node.child.is_stream
        and node.child.data.count == 1
    ):
        child = node.child
        node.data.offset += 0  # parent offset unchanged; child's moves down
        grandchild = child.child
        assert grandchild is not None
        grandchild.data.offset += child.data.offset
        node.child = grandchild
        changed = True
    # This level itself is a stream of one element: it adds no structure.
    if node.is_stream and node.data.count == 1 and node.child is not None:
        child = node.child
        child.data.offset += node.data.offset
        return child, True
    return node, changed


def stream_flatten(node: Type) -> Tuple[Type, bool]:
    """Merge nested streams whose strides chain exactly."""
    changed = False
    if node.child is not None:
        node.child, child_changed = stream_flatten(node.child)
        changed = changed or child_changed
    if (
        node.is_stream
        and node.child is not None
        and node.child.is_stream
        and node.data.stride == node.child.data.count * node.child.data.stride
    ):
        child = node.child
        node.data.count *= child.data.count
        node.data.stride = child.data.stride
        node.data.offset += child.data.offset
        node.child = child.child
        changed = True
    return node, changed


def sort_streams(node: Type) -> Tuple[Type, bool]:
    """Order stream levels by decreasing stride (largest stride at the top)."""
    levels = list(node.levels())
    if len(levels) < 3:  # a single stream over a leaf cannot be out of order
        return node, False
    leaf = levels[-1]
    streams = levels[:-1]
    if not all(level.is_stream for level in streams):
        return node, False
    original = [id(level) for level in streams]
    ordered = sorted(streams, key=lambda level: level.data.stride, reverse=True)
    if [id(level) for level in ordered] == original:
        return node, False
    # Rebuild the chain top-down over the same leaf.
    for upper, lower in zip(ordered, ordered[1:]):
        upper.child = lower
    ordered[-1].child = leaf
    return ordered[0], True


# --------------------------------------------------------------------------- #
# Fixed point
# --------------------------------------------------------------------------- #

def simplify(ty: Type) -> Type:
    """Apply the four transformations until none changes the tree (Alg. 1).

    The input is not modified; a canonicalised clone is returned.
    """
    node = ty.clone()
    for _ in range(MAX_PASSES):
        changed = False
        node, step = dense_folding(node)
        changed = changed or step
        node, step = stream_elision(node)
        changed = changed or step
        node, step = stream_flatten(node)
        changed = changed or step
        node, step = sort_streams(node)
        changed = changed or step
        if not changed:
            break
    else:  # pragma: no cover - defensive: the passes always reach a fixed point
        raise RuntimeError("canonicalisation did not converge")
    node.validate()
    return node


#: Alias used throughout the package and the paper's terminology.
canonicalize = simplify
