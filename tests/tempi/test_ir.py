"""Tests for the TEMPI Type IR."""

import pytest

from repro.tempi.ir import DenseData, StreamData, Type, dense, stream


class TestTypeData:
    def test_dense_validation(self):
        DenseData(offset=0, extent=4).validate()
        with pytest.raises(ValueError):
            DenseData(offset=-1, extent=4).validate()
        with pytest.raises(ValueError):
            DenseData(offset=0, extent=0).validate()

    def test_stream_validation(self):
        StreamData(offset=0, stride=4, count=2).validate()
        with pytest.raises(ValueError):
            StreamData(offset=0, stride=0, count=2).validate()
        with pytest.raises(ValueError):
            StreamData(offset=0, stride=4, count=0).validate()
        with pytest.raises(ValueError):
            StreamData(offset=-1, stride=4, count=1).validate()

    def test_clone_is_independent(self):
        data = StreamData(offset=1, stride=2, count=3)
        copy = data.clone()
        copy.count = 99
        assert data.count == 3


class TestTypeChain:
    def chain(self) -> Type:
        return stream(4, 64, stream(8, 8, dense(4)))

    def test_depth_and_levels(self):
        ty = self.chain()
        assert ty.depth() == 3
        kinds = [level.is_stream for level in ty.levels()]
        assert kinds == [True, True, False]

    def test_leaf(self):
        assert self.chain().leaf().is_dense

    def test_total_bytes(self):
        assert self.chain().total_bytes() == 4 * 8 * 4

    def test_footprint_is_tiny(self):
        # Three levels of at most three integers each: the Sec. 2 argument.
        assert self.chain().footprint() == 72

    def test_structure_summary(self):
        assert self.chain().structure() == (
            ("stream", 0, 64, 4),
            ("stream", 0, 8, 8),
            ("dense", 0, 4),
        )

    def test_str_rendering(self):
        text = str(self.chain())
        assert "Stream" in text and "Dense" in text and "->" in text

    def test_clone_deep_copies(self):
        ty = self.chain()
        copy = ty.clone()
        copy.child.data.count = 1000
        assert ty.child.data.count == 8

    def test_validate_accepts_well_formed(self):
        self.chain().validate()

    def test_validate_rejects_dense_with_child(self):
        bad = Type(DenseData(0, 4), dense(4))
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_stream_without_child(self):
        bad = Type(StreamData(0, 4, 2))
        with pytest.raises(ValueError):
            bad.validate()

    def test_dense_helper(self):
        ty = dense(16, offset=2)
        assert ty.is_dense
        assert ty.data.extent == 16
        assert ty.data.offset == 2

    def test_stream_helper(self):
        ty = stream(3, 12, dense(4), offset=1)
        assert ty.is_stream
        assert ty.data.count == 3
        assert ty.child.is_dense
