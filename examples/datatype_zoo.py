#!/usr/bin/env python
"""Datatype zoo: how distinct MPI constructions reach one canonical form.

Section 2 of the paper shows many equivalent ways to describe the same 3-D
object; Section 3 canonicalises them.  This example builds the paper's Fig. 2
object with several different constructor compositions and prints, for each:

* the raw Type IR produced by translation,
* the canonical Type after dense folding / elision / flattening / sorting,
* the StridedBlock and the selected kernel parameters.

All constructions end at the same StridedBlock — which is exactly why TEMPI
needs only a small family of generic kernels.

Run with:  python examples/datatype_zoo.py
"""

from __future__ import annotations

from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_resized,
    Type_create_subarray,
    Type_vector,
)
from repro.mpi.datatype import BYTE, FLOAT, ORDER_C
from repro.tempi.canonicalize import simplify
from repro.tempi.kernels import select_kernel
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate

# The Fig. 2 object: E0 x E1 x E2 floats inside an A0 x A1 x A2-byte allocation.
# (The paper's A0 = 256 B cannot hold 100 floats; we use a 512 B row.)
E0, E1, E2 = 100, 13, 47
A0, A1, A2 = 512, 512, 1024


def build_constructions():
    """The same 3-D object, described five different ways."""
    subarray_bytes = Type_create_subarray(
        sizes=(A2, A1, A0), subsizes=(E2, E1, E0 * 4), starts=(0, 0, 0), order=ORDER_C, oldtype=BYTE
    )

    plane_vector = Type_vector(E1, E0, A0 // 4, FLOAT)
    hvector_of_vector = Type_create_hvector(E2, 1, A0 * A1, plane_vector)

    row_contig = Type_contiguous(E0, FLOAT)
    plane_hvector = Type_create_hvector(E1, 1, A0, row_contig)
    hvector_of_hvector = Type_create_hvector(E2, 1, A0 * A1, plane_hvector)

    row_bytes = Type_contiguous(E0 * 4, BYTE)
    plane_hvector_bytes = Type_create_hvector(E1, 1, A0, row_bytes)
    hvector_bytes = Type_create_hvector(E2, 1, A0 * A1, plane_hvector_bytes)

    plane_resized = Type_create_resized(Type_vector(E1, E0, A0 // 4, FLOAT), 0, A0 * A1)
    subarray_of_vector = Type_create_subarray(
        sizes=(A2,), subsizes=(E2,), starts=(0,), order=ORDER_C, oldtype=plane_resized
    )

    return {
        "subarray of MPI_BYTE": subarray_bytes,
        "hvector(vector(FLOAT))": hvector_of_vector,
        "hvector(hvector(contiguous FLOAT))": hvector_of_hvector,
        "hvector(hvector(contiguous BYTE))": hvector_bytes,
        "subarray(resized vector)": subarray_of_vector,
    }


def main() -> None:
    print(f"Object: {E0} x {E1} x {E2} floats in a {A0} x {A1} x {A2} B allocation")
    print(f"Payload: {4 * E0 * E1 * E2:,} bytes\n")

    blocks = []
    for name, datatype in build_constructions().items():
        raw = translate(datatype)
        canonical = simplify(raw)
        block = to_strided_block(canonical)
        kernel = select_kernel(block)
        blocks.append(block)

        print(f"== {name}")
        print(f"   MPI size/extent : {datatype.size:,} / {datatype.extent:,} B")
        print(f"   raw IR          : {raw}")
        print(f"   canonical IR    : {canonical}")
        print(f"   strided block   : {block}")
        print(
            f"   kernel          : {kernel.dimensions}-D, word {kernel.word_size} B, "
            f"block {kernel.block_dim}, grid {kernel.grid_dim}"
        )
        print()

    identical = all(b == blocks[0] for b in blocks[1:])
    print(f"All constructions share one canonical StridedBlock: {identical}")
    print(f"Metadata footprint of that representation: {blocks[0].footprint()} bytes "
          f"(a block list would need {16 * blocks[0].num_blocks:,} bytes of GPU memory).")


if __name__ == "__main__":
    main()
