"""TEMPI configuration.

The real library is configured through environment variables (disable
interposition, force a packing method, point at the measurement file); the
reproduction uses an explicit :class:`TempiConfig` object with the same knobs
so benchmarks and ablations can construct variants directly.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Optional

from repro.machine.topology import TopologySpec


class PackMethod(enum.Enum):
    """How a non-contiguous send is staged (Sec. 4)."""

    #: Pack into an intermediate device buffer, send with CUDA-aware MPI.
    DEVICE = "device"
    #: Pack directly into mapped host memory, send from the host buffers.
    ONESHOT = "oneshot"
    #: Device pack, explicit D2H, host send, H2D, device unpack (Eq. 3).
    STAGED = "staged"
    #: Query the performance model and pick ONESHOT or DEVICE per call.
    AUTO = "auto"


#: Selection policies accepted by ``TempiConfig.selection``; the selector
#: classes themselves live in :mod:`repro.tempi.selection`.
SELECTION_MODES = ("model", "contended", "fixed")

#: NIC-accounting modes accepted by ``TempiConfig.nic``.  ``"duplex"`` prices
#: both ends of the wire (injection *and* ingestion ports); ``"inject_only"``
#: keeps the PR-3/PR-4 send-side-only accounting as an ablation.
NIC_MODES = ("duplex", "inject_only")

#: Allreduce schedules accepted by ``TempiConfig.allreduce_algorithm``.
#: ``"auto"`` defers to :func:`repro.tempi.selection.choose_allreduce_algorithm`
#: (topology- and size-aware); the named algorithms pin the schedule for
#: ablations and the property wall.
ALLREDUCE_ALGORITHMS = ("auto", "ring", "tree", "hierarchical")

#: Ambient default of ``TempiConfig.sanitize``: ``repro sanitize`` (and the
#: tests) flip it through :func:`sanitize_default` so benchmarks that build
#: their own configs replay under the sanitizer without modification.
_SANITIZE_DEFAULT = False


def _default_sanitize() -> bool:
    """The ambient ``sanitize`` default (see :func:`sanitize_default`)."""
    return _SANITIZE_DEFAULT


@contextmanager
def sanitize_default(enabled: bool) -> Iterator[None]:
    """Temporarily set the ambient default of ``TempiConfig.sanitize``.

    Only configs *constructed inside* the context inherit the default;
    explicit ``TempiConfig(sanitize=...)`` always wins.
    """
    global _SANITIZE_DEFAULT
    previous = _SANITIZE_DEFAULT
    _SANITIZE_DEFAULT = bool(enabled)
    try:
        yield
    finally:
        _SANITIZE_DEFAULT = previous


@dataclass(frozen=True)
class TempiConfig:
    """Runtime configuration of the interposer."""

    #: Master switch: when False every call passes straight to the system MPI.
    enabled: bool = True
    #: Accelerate MPI_Pack/MPI_Unpack on device buffers.
    datatype_handling: bool = True
    #: Accelerate MPI_Send/MPI_Recv on non-contiguous device datatypes.
    send_handling: bool = True
    #: Packing-method policy for sends.
    method: PackMethod = PackMethod.AUTO
    #: Which :mod:`repro.tempi.selection` selector resolves ``AUTO`` methods.
    #: ``"model"`` (the default) prices candidates contention-free (Eqs. 1-3);
    #: ``"contended"`` additionally folds the rank's live injection-port
    #: backlog from the shared :class:`~repro.machine.nic.NicTimeline` into
    #: each candidate, so the one-shot/device crossover shifts under load
    #: (``bench_fig9_selection.py`` measures the shift); ``"fixed"`` requires
    #: ``method`` to name a concrete method and never queries the model.
    selection: str = "model"
    #: Allreduce schedule for the interposed ``Allreduce``/``Iallreduce``.
    #: ``"auto"`` (the default) picks per call through
    #: :func:`repro.tempi.selection.choose_allreduce_algorithm` — the
    #: hierarchical schedule under a hierarchical topology, the binomial tree
    #: for latency-bound vectors, the chunked ring otherwise; ``"ring"``,
    #: ``"tree"`` and ``"hierarchical"`` pin the schedule for ablations
    #: (``bench_allreduce.py`` measures the spread).
    allreduce_algorithm: str = "auto"
    #: Overlap pack kernels with wire time: the plan executor issues each
    #: peer's pack on its own stream and posts that peer's message the moment
    #: its pack completes.  ``False`` reproduces the serial engine (pack every
    #: peer, then post) for ablations — ``bench_fig14_overlap.py`` measures
    #: the difference.
    overlap: bool = True
    #: Wire-state accounting of the progress engine.  ``"shared"`` (the
    #: default) reserves every message on the world's shared
    #: :class:`~repro.machine.nic.NicTimeline`, so concurrent plans contend
    #: for the rank's injection port; ``"per_plan"`` keeps the PR-2 per-plan
    #: cursor (no cross-plan contention) for ablations —
    #: ``bench_fig15_contention.py`` measures the difference.
    progress: str = "shared"
    #: Which ends of the wire the shared NIC timeline prices.  ``"duplex"``
    #: (the default) routes every plan-posted message through the sender's
    #: injection port *and* the receiver's ingestion port, so an incast (many
    #: senders converging on one rank) queues at the hot receiver and
    #: ``Wait``/``Test``/``Waitany`` arrival hints reflect its backlog;
    #: ``"inject_only"`` keeps the PR-3/PR-4 send-side-only accounting,
    #: bit-identical, as an ablation — ``bench_incast.py`` measures the
    #: difference.  Only meaningful under ``progress="shared"`` (the
    #: per-plan ablation has no shared timeline to ingest against).
    nic: str = "duplex"
    #: Coalesce consecutive sub-eager-threshold nonblocking sends to one peer
    #: into one pack launch burst and one posted wire message (shared-progress
    #: mode only; the batch flushes at the next progress point).
    batch_eager_sends: bool = True
    #: Most plans one batch may coalesce before it is flushed.
    batch_max_messages: int = 8
    #: Price homogeneous exchanges through the vectorized batch-booking fast
    #: path: when every post stage of a plan shares one ``(nbytes, method)``
    #: equivalence class, selection prices one representative (replaying the
    #: per-member charges) and the progress engine books all the wire slots
    #: in one :meth:`~repro.machine.nic.NicTimeline.reserve_batch` call.
    #: Priced results are bit-identical to the scalar path (Hypothesis-pinned);
    #: the knob exists as the ablation lever and for sanitized runs, which
    #: fall back to scalar booking automatically.
    batch_booking: bool = True
    #: Fewest same-class messages a plan must post before batch booking
    #: engages — below it the grouping bookkeeping costs more than the
    #: per-message calls it saves.
    batch_min_messages: int = 4
    #: Reuse streams, intermediate buffers and model query results (Sec. 5).
    use_cache: bool = True
    #: Reuse compiled :class:`~repro.tempi.plan.MessagePlan` templates for
    #: repeated exchange shapes.  A hit skips argument validation and plan
    #: construction but *replays* method selection call-for-call, so every
    #: priced charge (model queries, interposition overhead) is identical to
    #: a fresh compile — ``bench_sim_throughput.py`` measures what it buys.
    plan_cache: bool = True
    #: Most compiled plan templates retained per rank (LRU eviction).
    plan_cache_size: int = 256
    #: Memoise method-selection results for repeated ``(method, size, block)``
    #: queries, including a bounded cache of quantized-backlog states for the
    #: contended selector.  Disabling changes only *where* results come from,
    #: never the charge schedule: a repeated query is priced at the cached
    #: query cost whether or not the value is retained.
    selection_memo: bool = True
    #: Most contended-selection entries retained per rank (LRU eviction).
    selection_memo_size: int = 1024
    #: Run under the clock sanitizer (:mod:`repro.tempi.sanitizer`): every
    #: rank's NIC handle becomes a recording proxy that maintains per-rank
    #: vector clocks over reservation/ingest commits, audits cross-rank
    #: backlog reads for a happens-before edge, asserts port-cursor
    #: monotonicity, and checksums ledger state around selector pricing
    #: calls.  Violations raise ``SanitizerError``.  Priced results are
    #: unchanged — the proxy only observes — but wall-clock slows, so the
    #: knob defaults off; ``repro sanitize`` replays the figure benchmarks
    #: with it on (through :func:`sanitize_default`).
    sanitize: bool = field(default_factory=_default_sanitize)
    #: Cluster topology the engine routes and prices against
    #: (:class:`~repro.machine.topology.TopologySpec`): NVLink islands,
    #: shared NIC rails and the two-level fat-tree with oversubscribed
    #: uplinks.  ``None`` (the default) keeps the flat pre-topology books,
    #: bit-identically; a *flat* spec (``TopologySpec.flat(...)``) routes
    #: every post through path resolution but still reproduces the flat
    #: books bit-for-bit (Hypothesis-pinned).  Hierarchical specs make the
    #: wire price, the NIC binding and the contended selection all
    #: per-path-class — ``bench_topology.py`` measures the divergence.
    topology: Optional[TopologySpec] = None
    #: Where the system-measurement file lives; None keeps it in memory only.
    measurement_path: Optional[Path] = None
    #: Overhead charged per model query when the result is not cached, and
    #: when it is — the 277 ns the paper measures shows up through these.
    model_query_s: float = 2.0e-6
    model_cached_query_s: float = 277.0e-9
    #: Overhead of looking up the cached datatype handler and checking whether
    #: the user pointers are device resident (part of the ~30 µs send floor).
    handler_lookup_s: float = 1.2e-6
    pointer_check_s: float = 0.6e-6
    #: Extra labels carried into benchmark reports.
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.selection not in SELECTION_MODES:
            raise ValueError(
                f"unknown selection policy {self.selection!r}; expected one of {SELECTION_MODES}"
            )
        if self.nic not in NIC_MODES:
            raise ValueError(
                f"unknown nic mode {self.nic!r}; expected one of {NIC_MODES}"
            )
        if self.allreduce_algorithm not in ALLREDUCE_ALGORITHMS:
            raise ValueError(
                f"unknown allreduce algorithm {self.allreduce_algorithm!r}; "
                f"expected one of {ALLREDUCE_ALGORITHMS}"
            )
        if self.plan_cache_size < 1:
            raise ValueError(f"plan_cache_size must be >= 1, got {self.plan_cache_size}")
        if self.batch_min_messages < 1:
            raise ValueError(
                f"batch_min_messages must be >= 1, got {self.batch_min_messages}"
            )
        if self.selection_memo_size < 1:
            raise ValueError(
                f"selection_memo_size must be >= 1, got {self.selection_memo_size}"
            )
        if self.selection == "fixed" and self.method is PackMethod.AUTO:
            raise ValueError(
                "selection='fixed' needs a concrete method; set method=PackMethod.DEVICE/"
                "ONESHOT/STAGED (or use selection='model')"
            )

    def with_overrides(self, **kwargs) -> "TempiConfig":
        """Copy with fields replaced (ablations, forced methods)."""
        return replace(self, **kwargs)

    @staticmethod
    def disabled() -> "TempiConfig":
        """A configuration that turns TEMPI into a transparent pass-through."""
        return TempiConfig(enabled=False, datatype_handling=False, send_handling=False)
