"""Type translation: MPI datatype → Type IR (Sec. 3.1).

Each MPI constructor maps onto the IR as the paper prescribes:

* a *named* type becomes a ``DenseData`` of its extent;
* *contiguous* becomes a ``StreamData`` whose stride equals the old type's
  extent (it is not a ``DenseData`` because the old type may not be dense);
* *vector*/*hvector* become two nested ``StreamData`` — the parent for the
  repeated blocks, the child for the elements within a block;
* *subarray* becomes one ``StreamData`` per dimension, outer (largest stride)
  levels above inner ones, with the start offsets converted to bytes.

Datatypes TEMPI does not canonicalise (indexed, struct) raise
:class:`TranslationError`; the interposer catches it and falls back to the
system MPI's block-list path, mirroring the paper's coverage.
"""

from __future__ import annotations

from repro.mpi.constructors import (
    ContiguousDatatype,
    HvectorDatatype,
    IndexedDatatype,
    ResizedDatatype,
    StructDatatype,
    SubarrayDatatype,
    VectorDatatype,
)
from repro.mpi.datatype import Datatype, NamedDatatype
from repro.tempi.ir import DenseData, StreamData, Type


class TranslationError(ValueError):
    """The datatype is outside the family TEMPI canonicalises."""


def translate(datatype: Datatype) -> Type:
    """Convert an MPI datatype into its Type IR.

    Raises
    ------
    TranslationError
        For datatype families TEMPI does not handle (indexed, struct);
        callers are expected to fall back to the baseline engine.
    """
    if isinstance(datatype, NamedDatatype):
        return _translate_named(datatype)
    if isinstance(datatype, ContiguousDatatype):
        return _translate_contiguous(datatype)
    if isinstance(datatype, VectorDatatype):
        return _translate_vector(datatype)
    if isinstance(datatype, HvectorDatatype):
        return _translate_hvector(datatype)
    if isinstance(datatype, SubarrayDatatype):
        return _translate_subarray(datatype)
    if isinstance(datatype, ResizedDatatype):
        # Resizing changes only the extent (the spacing of *consecutive*
        # elements); the bytes of one element are those of the inner type.
        return translate(datatype.oldtype)
    if isinstance(datatype, (IndexedDatatype, StructDatatype)):
        raise TranslationError(
            f"{type(datatype).__name__} is handled by the baseline block-list path, "
            f"not by TEMPI's canonical representation"
        )
    raise TranslationError(f"unknown datatype class {type(datatype).__name__}")


# --------------------------------------------------------------------------- #
# Per-combiner translations
# --------------------------------------------------------------------------- #

def _translate_named(datatype: NamedDatatype) -> Type:
    """A named type is a dense run of its own extent with offset 0."""
    return Type(DenseData(offset=0, extent=datatype.extent))


def _translate_contiguous(datatype: ContiguousDatatype) -> Type:
    """A contiguous type is a stream whose stride equals the old type's extent."""
    child = translate(datatype.oldtype)
    data = StreamData(offset=0, stride=datatype.oldtype.extent, count=datatype.count)
    return Type(data, child)


def _translate_vector(datatype: VectorDatatype) -> Type:
    """A vector is two nested streams: blocks (parent) of elements (child).

    The child's stride is the old type's extent; the parent's stride is the
    child stride times the vector stride (the vector stride is given in
    elements of the old type).
    """
    element = translate(datatype.oldtype)
    child = Type(
        StreamData(offset=0, stride=datatype.oldtype.extent, count=datatype.blocklength),
        element,
    )
    parent = StreamData(
        offset=0,
        stride=datatype.stride * datatype.oldtype.extent,
        count=datatype.count,
    )
    return Type(parent, child)


def _translate_hvector(datatype: HvectorDatatype) -> Type:
    """Like a vector, but the parent stride is the hvector's byte stride."""
    element = translate(datatype.oldtype)
    child = Type(
        StreamData(offset=0, stride=datatype.oldtype.extent, count=datatype.blocklength),
        element,
    )
    parent = StreamData(offset=0, stride=datatype.stride_bytes, count=datatype.count)
    return Type(parent, child)


def _translate_subarray(datatype: SubarrayDatatype) -> Type:
    """One StreamData per dimension, slowest dimension at the top.

    For dimension ``d`` the count is its subsize, the stride is the product of
    the full-array sizes of all faster dimensions times the old type's extent,
    and the offset is the start index converted to bytes with that stride.
    """
    node = translate(datatype.oldtype)
    old_extent = datatype.oldtype.extent
    # Build from the fastest dimension upwards so the slowest ends up on top.
    for dim in datatype.fastest_first:
        stride = datatype.dimension_stride_elements(dim) * old_extent
        data = StreamData(
            offset=datatype.starts[dim] * stride,
            stride=stride,
            count=datatype.subsizes[dim],
        )
        node = Type(data, node)
    return node


def translatable(datatype: Datatype) -> bool:
    """True when :func:`translate` accepts the datatype (used by the interposer)."""
    try:
        translate(datatype)
    except TranslationError:
        return False
    return True
