"""Simulated CUDA substrate.

The paper's system (TEMPI) performs all of its non-contiguous data handling
with the CUDA runtime: device allocations, pinned/mapped host allocations,
streams, events, ``cudaMemcpyAsync`` and hand-written pack/unpack kernels.
No GPU is available to this reproduction, so this package provides a
*functional* simulation of that runtime:

* buffers are NumPy byte arrays, so every copy and every pack/unpack kernel
  really moves bytes and can be checked for correctness; and
* every operation advances a per-context :class:`~repro.gpu.clock.VirtualClock`
  by a duration computed from a :class:`~repro.gpu.cost_model.GpuCostModel`
  calibrated to the published characteristics of a Summit node (V100 GPUs,
  NVLink 2 CPU-GPU links), so latency *shapes* (launch floors, bandwidth
  vs. access-coalescing) survive the substitution.

The public surface mirrors the small slice of the CUDA runtime API that TEMPI
uses; see :class:`~repro.gpu.runtime.CudaRuntime`.
"""

from repro.gpu.clock import VirtualClock
from repro.gpu.cost_model import GpuCostModel
from repro.gpu.device import Device, DeviceProperties
from repro.gpu.errors import (
    CudaError,
    CudaInvalidValue,
    CudaMemcpyError,
    CudaOutOfMemory,
)
from repro.gpu.memory import (
    DeviceBuffer,
    HostBuffer,
    MemoryKind,
    MemoryPool,
)
from repro.gpu.runtime import CudaRuntime, MemcpyKind
from repro.gpu.stream import Event, Stream

__all__ = [
    "CudaError",
    "CudaInvalidValue",
    "CudaMemcpyError",
    "CudaOutOfMemory",
    "CudaRuntime",
    "Device",
    "DeviceBuffer",
    "DeviceProperties",
    "Event",
    "GpuCostModel",
    "HostBuffer",
    "MemcpyKind",
    "MemoryKind",
    "MemoryPool",
    "Stream",
    "VirtualClock",
]
