"""Documentation contract tests.

The architecture/config documents are cross-referenced from the README and
promise complete coverage of the ``TempiConfig`` surface; these tests keep
both promises honest without depending on CI (which runs the same link
checker as a workflow step).
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

from repro.tempi.config import TempiConfig

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
TOOLS = REPO / "tools"


def test_docs_exist_and_are_cross_linked():
    readme = (REPO / "README.md").read_text()
    assert (DOCS / "ARCHITECTURE.md").exists()
    assert (DOCS / "CONFIG.md").exists()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/CONFIG.md" in readme


def test_relative_links_resolve():
    """The same check CI runs: every relative Markdown link exists on disk."""
    sys.path.insert(0, str(TOOLS))
    try:
        import check_links
    finally:
        sys.path.remove(str(TOOLS))
    files = check_links.collect([str(REPO / "README.md"), str(DOCS)])
    assert check_links.broken_links(files) == []


def test_config_reference_covers_every_knob():
    """docs/CONFIG.md documents every ``TempiConfig`` field by name."""
    text = (DOCS / "CONFIG.md").read_text()
    for field in dataclasses.fields(TempiConfig):
        assert f"`{field.name}`" in text, f"knob {field.name!r} missing from docs/CONFIG.md"


def test_architecture_names_every_layer():
    text = (DOCS / "ARCHITECTURE.md").read_text()
    for layer in (
        "repro.mpi",
        "repro.tempi.interposer",
        "repro.tempi.plan",
        "repro.tempi.executor",
        "repro.tempi.progress",
        "repro.machine.nic",
        "repro.gpu",
    ):
        assert layer in text, f"layer {layer!r} missing from the architecture map"
    assert "Ialltoallv" in text  # the end-to-end lifecycle trace
