"""Machine and network description.

The paper's evaluation platform is OLCF Summit: two POWER9 CPUs and six V100
GPUs per node, NVLink 2 within a node and EDR InfiniBand between nodes, with
Spectrum MPI providing both a CPU path (≈1.3 µs small-message latency in
Fig. 9a) and a CUDA-aware GPU path (≈6 µs floor).  This package captures that
machine as data (:mod:`repro.machine.spec`), provides a postal-model network
(:mod:`repro.machine.network`) used by the simulated MPI to price messages,
and maps ranks onto nodes and GPUs (:mod:`repro.machine.topology`).
"""

from repro.machine.network import NetworkModel, TransferPath
from repro.machine.nic import LinkRecord, NicReservation, NicTimeline
from repro.machine.spec import (
    SUMMIT,
    InterconnectSpec,
    MachineSpec,
    NodeSpec,
    summit_like,
)
from repro.machine.topology import RankPlacement, Topology

__all__ = [
    "InterconnectSpec",
    "LinkRecord",
    "MachineSpec",
    "NetworkModel",
    "NicReservation",
    "NicTimeline",
    "NodeSpec",
    "RankPlacement",
    "SUMMIT",
    "Topology",
    "TransferPath",
    "summit_like",
]
