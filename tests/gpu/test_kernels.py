"""Tests for the functional strided pack/unpack kernels."""

import numpy as np
import pytest

from repro.gpu import kernels
from repro.gpu.errors import CudaInvalidValue


def make_memory(nbytes: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


class TestRequiredExtent:
    def test_single_dense_run(self):
        assert kernels.required_extent(0, [16], [1]) == 16

    def test_two_dimensional(self):
        # 4 rows of 8 bytes, 32 bytes apart, starting at byte 3.
        assert kernels.required_extent(3, [8, 4], [1, 32]) == 3 + 3 * 32 + 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CudaInvalidValue):
            kernels.required_extent(0, [8, 4], [1])

    def test_zero_count_rejected(self):
        with pytest.raises(CudaInvalidValue):
            kernels.required_extent(0, [0], [1])

    def test_zero_stride_rejected(self):
        with pytest.raises(CudaInvalidValue):
            kernels.required_extent(0, [2, 2], [1, 0])

    def test_packed_size_is_product(self):
        assert kernels.packed_size([8, 4, 3]) == 96


class TestPackUnpack2D:
    def test_pack_gathers_rows(self):
        src = make_memory(256)
        dst = np.zeros(32, dtype=np.uint8)
        written = kernels.pack_strided(src, dst, 0, [8, 4], [1, 64])
        assert written == 32
        expected = np.concatenate([src[i * 64 : i * 64 + 8] for i in range(4)])
        assert np.array_equal(dst, expected)

    def test_pack_honours_start_offset(self):
        src = make_memory(256)
        dst = np.zeros(16, dtype=np.uint8)
        kernels.pack_strided(src, dst, 10, [8, 2], [1, 64])
        expected = np.concatenate([src[10:18], src[74:82]])
        assert np.array_equal(dst, expected)

    def test_unpack_is_inverse_of_pack(self):
        original = make_memory(512, seed=1)
        packed = np.zeros(64, dtype=np.uint8)
        kernels.pack_strided(original, packed, 4, [16, 4], [1, 128])
        scattered = np.zeros_like(original)
        kernels.unpack_strided(packed, scattered, 4, [16, 4], [1, 128])
        repacked = np.zeros(64, dtype=np.uint8)
        kernels.pack_strided(scattered, repacked, 4, [16, 4], [1, 128])
        assert np.array_equal(packed, repacked)

    def test_unpack_leaves_other_bytes_untouched(self):
        dst = np.zeros(256, dtype=np.uint8)
        packed = np.full(32, 9, dtype=np.uint8)
        kernels.unpack_strided(packed, dst, 0, [8, 4], [1, 64])
        touched = np.zeros(256, dtype=bool)
        for i in range(4):
            touched[i * 64 : i * 64 + 8] = True
        assert (dst[touched] == 9).all()
        assert not dst[~touched].any()

    def test_pack_out_of_bounds_rejected(self):
        src = make_memory(64)
        dst = np.zeros(64, dtype=np.uint8)
        with pytest.raises(CudaInvalidValue):
            kernels.pack_strided(src, dst, 0, [8, 4], [1, 64])  # needs 8 + 3*64

    def test_pack_destination_too_small_rejected(self):
        src = make_memory(256)
        dst = np.zeros(16, dtype=np.uint8)
        with pytest.raises(CudaInvalidValue):
            kernels.pack_strided(src, dst, 0, [8, 4], [1, 64])

    def test_requires_uint8_1d(self):
        src = make_memory(64).astype(np.uint16)
        with pytest.raises(CudaInvalidValue):
            kernels.pack_strided(src, np.zeros(8, np.uint8), 0, [8], [1])


class TestPackUnpack3D:
    def test_pack_3d_matches_manual_gather(self):
        src = make_memory(4096, seed=2)
        counts = [4, 3, 2]      # 4-byte runs, 3 rows, 2 planes
        strides = [1, 16, 512]
        dst = np.zeros(24, dtype=np.uint8)
        kernels.pack_strided(src, dst, 0, counts, strides)
        expected = []
        for plane in range(2):
            for row in range(3):
                start = plane * 512 + row * 16
                expected.append(src[start : start + 4])
        assert np.array_equal(dst, np.concatenate(expected))

    def test_roundtrip_3d(self):
        src = make_memory(4096, seed=3)
        counts, strides = [8, 4, 4], [1, 32, 256]
        packed = np.zeros(128, dtype=np.uint8)
        kernels.pack_strided(src, packed, 16, counts, strides)
        dst = np.zeros_like(src)
        kernels.unpack_strided(packed, dst, 16, counts, strides)
        repacked = np.zeros(128, dtype=np.uint8)
        kernels.pack_strided(dst, repacked, 16, counts, strides)
        assert np.array_equal(packed, repacked)


class TestManyObjects:
    def test_pack_many_respects_object_extent(self):
        src = make_memory(1024, seed=4)
        counts, strides = [8, 2], [1, 64]
        extent = 200
        dst = np.zeros(3 * 16, dtype=np.uint8)
        written = kernels.pack_strided_many(src, dst, 0, counts, strides, 3, extent)
        assert written == 48
        expected = []
        for obj in range(3):
            for row in range(2):
                start = obj * extent + row * 64
                expected.append(src[start : start + 8])
        assert np.array_equal(dst, np.concatenate(expected))

    def test_unpack_many_roundtrip(self):
        src = make_memory(1024, seed=5)
        counts, strides = [4, 4], [1, 32]
        packed = np.zeros(2 * 16, dtype=np.uint8)
        kernels.pack_strided_many(src, packed, 0, counts, strides, 2, 256)
        dst = np.zeros_like(src)
        kernels.unpack_strided_many(packed, dst, 0, counts, strides, 2, 256)
        repacked = np.zeros_like(packed)
        kernels.pack_strided_many(dst, repacked, 0, counts, strides, 2, 256)
        assert np.array_equal(packed, repacked)

    def test_zero_count_rejected(self):
        src = make_memory(64)
        with pytest.raises(CudaInvalidValue):
            kernels.pack_strided_many(src, np.zeros(8, np.uint8), 0, [8], [1], 0, 8)


class TestBlockListCopy:
    def test_gather(self):
        src = make_memory(128, seed=6)
        dst = np.zeros(12, dtype=np.uint8)
        blocks = [(0, 4), (50, 4), (100, 4)]
        moved = kernels.copy_block_list(src, dst, blocks, gather=True)
        assert moved == 12
        assert np.array_equal(dst, np.concatenate([src[0:4], src[50:54], src[100:104]]))

    def test_scatter(self):
        src = np.arange(12, dtype=np.uint8)
        dst = np.zeros(128, dtype=np.uint8)
        blocks = [(10, 6), (60, 6)]
        kernels.copy_block_list(src, dst, blocks, gather=False)
        assert np.array_equal(dst[10:16], src[:6])
        assert np.array_equal(dst[60:66], src[6:])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(CudaInvalidValue):
            kernels.copy_block_list(
                np.zeros(8, np.uint8), np.zeros(8, np.uint8), [(4, 8)], gather=True
            )

    def test_negative_block_rejected(self):
        with pytest.raises(CudaInvalidValue):
            kernels.copy_block_list(
                np.zeros(8, np.uint8), np.zeros(8, np.uint8), [(-1, 2)], gather=True
            )
