"""Analytic halo-exchange model for paper-scale rank counts (Fig. 12).

The functional :class:`~repro.apps.stencil.HaloExchange` moves real bytes and
is limited to tens of ranks of modest grids on one machine.  Fig. 12 runs
256³ points per rank on up to 512 nodes × 6 GPUs = 3072 ranks; this module
evaluates the *same per-rank cost expressions* the functional path charges —
baseline per-block memcpys or TEMPI kernels for pack/unpack, the network
model for the all-to-all-v — without allocating gigabytes or spawning
thousands of threads.

Because every rank owns an identical sub-domain and the decomposition is
periodic, ranks are statistically identical; the model evaluates one
representative rank per node position and reports the maximum across the
distinct neighbour placements, which is what the paper's "maximum time across
all ranks" reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid
from repro.machine.network import NetworkModel
from repro.machine.spec import SUMMIT, MachineSpec
from repro.machine.topology import Topology
from repro.tempi.config import TempiConfig


@dataclass(frozen=True)
class ExchangeBreakdown:
    """Modelled per-phase seconds of one halo exchange (max across ranks)."""

    nodes: int
    ranks_per_node: int
    nranks: int
    pack_s: float
    comm_s: float
    unpack_s: float

    @property
    def total_s(self) -> float:
        return self.pack_s + self.comm_s + self.unpack_s


def _pack_phase_time(
    spec: HaloSpec,
    machine: MachineSpec,
    *,
    tempi: bool,
    unpack: bool,
    config: TempiConfig,
) -> float:
    """Time one rank spends packing (or unpacking) its 26 halos."""
    gpu = machine.node.gpu
    total = 0.0
    for direction in DIRECTIONS:
        nbytes = spec.halo_bytes(direction)
        block = spec.halo_block_length(direction)
        if tempi:
            total += gpu.kernel_time(nbytes, block, target="device", unpack=unpack)
            total += config.handler_lookup_s + config.pointer_check_s
        else:
            blocks = spec.halo_block_count(direction)
            total += blocks * gpu.memcpy_call_s + nbytes / gpu.d2d_bandwidth
    return total


def _comm_phase_time(
    spec: HaloSpec,
    grid: RankGrid,
    topology: Topology,
    network: NetworkModel,
) -> float:
    """Time the slowest rank spends in the all-to-all-v.

    Every rank exchanges the same 26 sections; what differs is how many of its
    neighbours share its node.  The model evaluates every rank's aggregate
    per-peer byte counts through the same :meth:`NetworkModel.alltoallv_time`
    the functional path charges and returns the maximum — but since ranks on
    the same node position are identical it only needs to examine one node's
    worth of ranks.
    """
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    worst = 0.0
    for rank in representatives:
        per_pair = [0] * grid.nranks
        for direction, peer in grid.neighbors(rank):
            per_pair[peer] += spec.halo_bytes(direction)
        worst = max(
            worst,
            network.alltoallv_time(per_pair, topology, rank, device_buffers=True),
        )
    return worst


def model_halo_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    tempi: bool = True,
    config: TempiConfig | None = None,
) -> ExchangeBreakdown:
    """Model one halo exchange at ``nodes × ranks_per_node`` scale.

    ``tempi=False`` prices the pack/unpack phases with the Spectrum-like
    baseline (one memcpy per contiguous block); ``tempi=True`` prices them
    with TEMPI's kernels.  The communication phase is identical in both cases,
    which is why the paper's speedup shrinks as communication grows with the
    rank count.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    pack = _pack_phase_time(spec, machine, tempi=tempi, unpack=False, config=config)
    unpack = _pack_phase_time(spec, machine, tempi=tempi, unpack=True, config=config)
    comm = _comm_phase_time(spec, grid, topology, network)
    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=pack,
        comm_s=comm,
        unpack_s=unpack,
    )


def halo_exchange_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Whole-exchange speedup of TEMPI over the baseline (Fig. 12b)."""
    baseline = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=False
    )
    accelerated = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=True
    )
    return baseline.total_s / accelerated.total_s
