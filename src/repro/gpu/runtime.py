"""The simulated CUDA runtime facade.

:class:`CudaRuntime` is the single object the rest of the reproduction talks
to when it needs GPU work: allocations, copies, streams, events and the
strided pack/unpack kernels.  Each call both

* performs the functional effect on NumPy-backed buffers, and
* charges virtual time on the runtime's clock / streams according to the
  :class:`~repro.gpu.cost_model.GpuCostModel`.

One :class:`CudaRuntime` corresponds to one process's view of one GPU, which
matches the paper's setting (one V100 per MPI rank on Summit).
"""

from __future__ import annotations

from typing import Optional, Sequence

import enum

import numpy as np

from repro.gpu import kernels
from repro.gpu.clock import VirtualClock
from repro.gpu.cost_model import SUMMIT_GPU, GpuCostModel
from repro.gpu.device import Device, DeviceProperties
from repro.gpu.errors import CudaInvalidValue, CudaMemcpyError
from repro.gpu.memory import Buffer, DeviceBuffer, HostBuffer, MemoryKind
from repro.gpu.stream import Event, Stream


class MemcpyKind(enum.Enum):
    """Direction of a ``cudaMemcpy``; DEFAULT infers it from the buffer kinds."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"
    HOST_TO_HOST = "h2h"
    DEFAULT = "default"


class CudaRuntime:
    """Simulated CUDA runtime bound to one device and one virtual clock."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        cost_model: GpuCostModel = SUMMIT_GPU,
        device: Optional[Device] = None,
        properties: Optional[DeviceProperties] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.cost = cost_model
        self.device = device if device is not None else Device(0, properties or DeviceProperties())
        self.default_stream = Stream(self.clock, name="default")
        self._streams: list[Stream] = [self.default_stream]
        self.kernel_launches = 0
        self.memcpy_calls = 0

    # ------------------------------------------------------------- allocation
    def malloc(self, nbytes: int) -> DeviceBuffer:
        """``cudaMalloc``: allocate device memory (charged ``alloc_s``)."""
        self.device.allocate(nbytes)
        self.clock.advance(self.cost.alloc_s)
        return DeviceBuffer(nbytes, self.device)

    def free(self, buffer: Buffer) -> None:
        """``cudaFree`` / ``cudaFreeHost``: release an allocation."""
        if buffer.is_view:
            raise CudaInvalidValue("cannot free a view; free its parent allocation")
        if buffer.freed:
            return
        if buffer.is_device:
            self.device.release(buffer.nbytes)
            self.clock.advance(self.cost.free_s)
        buffer._freed = True  # noqa: SLF001 - runtime owns buffer lifecycle

    def host_alloc(self, nbytes: int, kind: MemoryKind = MemoryKind.HOST_PINNED) -> HostBuffer:
        """``cudaHostAlloc`` / ``malloc``: allocate host memory of the given kind."""
        if kind is MemoryKind.DEVICE:
            raise CudaInvalidValue("host_alloc cannot produce device memory")
        if kind in (MemoryKind.HOST_PINNED, MemoryKind.HOST_MAPPED):
            self.clock.advance(self.cost.host_alloc_pinned_s)
        return HostBuffer(nbytes, kind)

    # ---------------------------------------------------------------- streams
    def stream_create(self, name: Optional[str] = None) -> Stream:
        """``cudaStreamCreate``."""
        stream = Stream(self.clock, name=name)
        self._streams.append(stream)
        return stream

    def stream_destroy(self, stream: Stream) -> None:
        """``cudaStreamDestroy``."""
        stream.destroy()
        if stream in self._streams:
            self._streams.remove(stream)

    def stream_synchronize(self, stream: Optional[Stream] = None) -> float:
        """``cudaStreamSynchronize``: block the host until the stream drains."""
        stream = stream or self.default_stream
        return stream.synchronize(self.cost.kernel_sync_s)

    def device_synchronize(self) -> float:
        """``cudaDeviceSynchronize``: block until every stream drains."""
        latest = max((s.ready_time for s in self._streams), default=self.clock.now)
        self.clock.advance_to(latest)
        self.clock.advance(self.cost.kernel_sync_s)
        return self.clock.now

    def event_create(self, name: Optional[str] = None) -> Event:
        """``cudaEventCreate``."""
        return Event(self.clock, name=name)

    # ----------------------------------------------------------------- copies
    @staticmethod
    def _infer_kind(dst: Buffer, src: Buffer) -> MemcpyKind:
        if src.is_device and dst.is_device:
            return MemcpyKind.DEVICE_TO_DEVICE
        if src.is_device and not dst.is_device:
            return MemcpyKind.DEVICE_TO_HOST
        if not src.is_device and dst.is_device:
            return MemcpyKind.HOST_TO_DEVICE
        return MemcpyKind.HOST_TO_HOST

    def _memcpy_duration(self, nbytes: int, kind: MemcpyKind) -> float:
        if kind is MemcpyKind.DEVICE_TO_DEVICE:
            return self.cost.memcpy_d2d_time(nbytes)
        if kind is MemcpyKind.DEVICE_TO_HOST:
            return self.cost.memcpy_d2h_time(nbytes)
        if kind is MemcpyKind.HOST_TO_DEVICE:
            return self.cost.memcpy_h2d_time(nbytes)
        return self.cost.memcpy_h2h_time(nbytes)

    def memcpy_async(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: Optional[int] = None,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
        stream: Optional[Stream] = None,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> float:
        """``cudaMemcpyAsync``: copy bytes and enqueue the transfer time on a stream.

        Returns the virtual completion time of the copy on its stream.
        """
        stream = stream or self.default_stream
        if nbytes is None:
            nbytes = min(dst.nbytes - dst_offset, src.nbytes - src_offset)
        if nbytes < 0:
            raise CudaMemcpyError(f"negative copy size {nbytes}")
        if dst_offset + nbytes > dst.nbytes or src_offset + nbytes > src.nbytes:
            raise CudaMemcpyError(
                f"memcpy of {nbytes} bytes escapes buffers "
                f"(src {src.nbytes - src_offset} avail, dst {dst.nbytes - dst_offset} avail)"
            )
        if kind is MemcpyKind.DEFAULT:
            kind = self._infer_kind(dst, src)
        # Functional effect.
        dst.data[dst_offset : dst_offset + nbytes] = src.data[src_offset : src_offset + nbytes]
        self.memcpy_calls += 1
        duration = self._memcpy_duration(nbytes, kind)
        return stream.enqueue(duration)

    def memcpy(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: Optional[int] = None,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> float:
        """Synchronous ``cudaMemcpy``: copy then block until it completes."""
        self.memcpy_async(dst, src, nbytes, kind, self.default_stream, dst_offset, src_offset)
        return self.default_stream.synchronize()

    def memset(self, buffer: Buffer, value: int, stream: Optional[Stream] = None) -> float:
        """``cudaMemsetAsync``."""
        stream = stream or self.default_stream
        buffer.fill(value)
        return stream.enqueue(self.cost.memcpy_d2d_time(buffer.nbytes))

    # ---------------------------------------------------------------- kernels
    def launch_pack(
        self,
        src: Buffer,
        dst: Buffer,
        start: int,
        counts: Sequence[int],
        strides: Sequence[int],
        *,
        count: int = 1,
        object_extent: int = 0,
        dst_offset: int = 0,
        stream: Optional[Stream] = None,
        word_size: int = 1,
    ) -> int:
        """Launch a pack kernel: gather the strided object in ``src`` into ``dst``.

        ``word_size`` is the element width TEMPI specialises the kernel to
        (Sec. 3.3); it does not change the result, only (slightly) the cost,
        because wide loads reduce the number of memory transactions.
        """
        stream = stream or self.default_stream
        total = kernels.packed_size(counts) * count
        target = "host" if not dst.is_device else "device"
        duration = self._kernel_duration(total, counts, target, unpack=False, word_size=word_size)
        written = kernels.pack_strided_many(
            src.data, dst.data, start, counts, strides, count, object_extent or self._default_extent(counts, strides), dst_offset
        )
        self.kernel_launches += 1
        stream.enqueue(duration, host_overhead=self.cost.kernel_launch_s)
        return written

    def launch_unpack(
        self,
        src: Buffer,
        dst: Buffer,
        start: int,
        counts: Sequence[int],
        strides: Sequence[int],
        *,
        count: int = 1,
        object_extent: int = 0,
        src_offset: int = 0,
        stream: Optional[Stream] = None,
        word_size: int = 1,
    ) -> int:
        """Launch an unpack kernel: scatter ``src`` into the strided object in ``dst``."""
        stream = stream or self.default_stream
        total = kernels.packed_size(counts) * count
        target = "host" if not src.is_device else "device"
        duration = self._kernel_duration(total, counts, target, unpack=True, word_size=word_size)
        consumed = kernels.unpack_strided_many(
            src.data, dst.data, start, counts, strides, count, object_extent or self._default_extent(counts, strides), src_offset
        )
        self.kernel_launches += 1
        stream.enqueue(duration, host_overhead=self.cost.kernel_launch_s)
        return consumed

    @staticmethod
    def _default_extent(counts: Sequence[int], strides: Sequence[int]) -> int:
        """Extent of one object when the caller does not supply one (count == 1)."""
        return kernels.required_extent(0, counts, strides)

    def _kernel_duration(
        self,
        total_bytes: int,
        counts: Sequence[int],
        target: str,
        *,
        unpack: bool,
        word_size: int,
    ) -> float:
        # The coalescing behaviour is governed by the contiguous run length
        # (counts[0]); the specialised word size only changes instruction
        # counts, which the model folds into the launch constant.
        del word_size
        block = int(counts[0]) if counts else 1
        duration = self.cost.kernel_time(
            total_bytes,
            block,
            target=target,
            unpack=unpack,
            include_sync=False,
        )
        return duration - self.cost.kernel_launch_s  # launch charged to host separately

    # ------------------------------------------------------------- utilities
    def elapsed(self, start: float) -> float:
        """Virtual seconds elapsed since ``start``."""
        return self.clock.now - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CudaRuntime device={self.device.ordinal} t={self.clock.now:.6f}s "
            f"kernels={self.kernel_launches} memcpys={self.memcpy_calls}>"
        )
