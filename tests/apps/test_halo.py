"""Tests for halo geometry, datatypes and the rank grid."""

import pytest

from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid
from repro.mpi import typemap
from repro.tempi.canonicalize import simplify
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate


class TestDirections:
    def test_twenty_six_neighbours(self):
        assert len(DIRECTIONS) == 26
        assert (0, 0, 0) not in DIRECTIONS

    def test_faces_edges_corners(self):
        faces = [d for d in DIRECTIONS if sum(abs(c) for c in d) == 1]
        edges = [d for d in DIRECTIONS if sum(abs(c) for c in d) == 2]
        corners = [d for d in DIRECTIONS if sum(abs(c) for c in d) == 3]
        assert (len(faces), len(edges), len(corners)) == (6, 12, 8)


class TestHaloSpec:
    def test_paper_configuration(self):
        spec = HaloSpec.paper()
        assert spec.nx == spec.ny == spec.nz == 256
        assert spec.radius == 3
        assert spec.point_bytes == 64
        # 262^3 * 64 bytes of allocation per rank
        assert spec.alloc_bytes == 262**3 * 64

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            HaloSpec(nx=0)
        with pytest.raises(ValueError):
            HaloSpec(radius=0)
        with pytest.raises(ValueError):
            HaloSpec(nx=2, ny=8, nz=8, radius=3)
        with pytest.raises(ValueError):
            HaloSpec(fields=0)

    def test_halo_extents_by_direction_class(self):
        spec = HaloSpec(nx=16, ny=16, nz=16, radius=3)
        assert spec.halo_extents((1, 0, 0)) == (3, 16, 16)
        assert spec.halo_extents((0, -1, 0)) == (16, 3, 16)
        assert spec.halo_extents((1, 1, 0)) == (3, 3, 16)
        assert spec.halo_extents((1, -1, 1)) == (3, 3, 3)

    def test_halo_bytes(self):
        spec = HaloSpec(nx=16, ny=16, nz=16, radius=3)
        assert spec.halo_bytes((1, 0, 0)) == 3 * 16 * 16 * 64
        assert spec.halo_bytes((1, 1, 1)) == 27 * 64

    def test_total_halo_bytes_counts_all_directions(self):
        spec = HaloSpec(nx=8, ny=8, nz=8, radius=2)
        assert spec.total_halo_bytes() == sum(spec.halo_bytes(d) for d in DIRECTIONS)

    def test_block_length_and_count(self):
        spec = HaloSpec(nx=16, ny=16, nz=16, radius=3)
        assert spec.halo_block_length((1, 0, 0)) == 3 * 64
        assert spec.halo_block_count((1, 0, 0)) == 16 * 16
        assert spec.halo_block_length((0, 0, 1)) == 16 * 64
        assert spec.halo_block_count((0, 0, 1)) == 16 * 3

    def test_invalid_direction_rejected(self):
        spec = HaloSpec()
        with pytest.raises(ValueError):
            spec.send_datatype((0, 0, 0))
        with pytest.raises(ValueError):
            spec.recv_datatype((2, 0, 0))


class TestHaloDatatypes:
    spec = HaloSpec(nx=8, ny=8, nz=8, radius=2)

    def test_size_matches_halo_bytes(self):
        for direction in DIRECTIONS:
            send = self.spec.send_datatype(direction)
            recv = self.spec.recv_datatype(direction)
            assert send.size == self.spec.halo_bytes(direction)
            assert recv.size == send.size

    def test_send_and_recv_regions_disjoint(self):
        for direction in DIRECTIONS:
            send_blocks = set(typemap.flatten(self.spec.send_datatype(direction)))
            recv_blocks = set(typemap.flatten(self.spec.recv_datatype(direction)))
            assert not send_blocks & recv_blocks

    def test_regions_fit_inside_allocation(self):
        for direction in DIRECTIONS:
            for datatype in (
                self.spec.send_datatype(direction),
                self.spec.recv_datatype(direction),
            ):
                last = max(o + l for o, l in typemap.flatten(datatype))
                assert last <= self.spec.alloc_bytes

    def test_block_count_matches_analytic(self):
        for direction in DIRECTIONS:
            datatype = self.spec.send_datatype(direction)
            assert len(list(typemap.flatten(datatype))) == self.spec.halo_block_count(direction)

    def test_datatypes_are_tempi_translatable(self):
        for direction in DIRECTIONS:
            block = to_strided_block(simplify(translate(self.spec.send_datatype(direction))))
            assert block is not None
            assert block.packed_bytes == self.spec.halo_bytes(direction)
            assert block.block_length == self.spec.halo_block_length(direction)


class TestRankGrid:
    def test_near_cubic_factorisation(self):
        assert sorted(RankGrid.for_ranks(8).dims) == [2, 2, 2]
        assert sorted(RankGrid.for_ranks(12).dims) == [2, 2, 3]
        assert sorted(RankGrid.for_ranks(27).dims) == [3, 3, 3]
        assert sorted(RankGrid.for_ranks(3072).dims) == [12, 16, 16]

    def test_prime_counts_degenerate(self):
        assert sorted(RankGrid.for_ranks(7).dims) == [1, 1, 7]

    def test_rank_count_preserved(self):
        for n in (1, 2, 6, 48, 384):
            assert RankGrid.for_ranks(n).nranks == n

    def test_coords_roundtrip(self):
        grid = RankGrid.for_ranks(24)
        for rank in range(24):
            assert grid.rank_of(grid.coords(rank)) == rank

    def test_periodic_neighbours(self):
        grid = RankGrid((2, 2, 2))
        # wrapping in every axis
        assert grid.neighbor(0, (-1, 0, 0)) == grid.neighbor(0, (1, 0, 0))
        assert grid.neighbor(7, (1, 1, 1)) == 0

    def test_neighbors_enumerates_all_directions(self):
        grid = RankGrid.for_ranks(27)
        pairs = list(grid.neighbors(13))
        assert len(pairs) == 26
        assert all(0 <= peer < 27 for _, peer in pairs)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            RankGrid.for_ranks(8).coords(8)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            RankGrid.for_ranks(0)
