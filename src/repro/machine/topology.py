"""Rank placement.

The halo-exchange evaluation (Fig. 12) varies *nodes × ranks-per-node*; the
cost of a message depends on whether its endpoints share a node (shared
memory / NVLink) or not (InfiniBand).  :class:`Topology` maps a linear rank
number onto a (node, local rank, GPU) triple using the block placement
``jsrun`` would produce, and answers the only question the network model
needs: are two ranks on the same node?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import SUMMIT, MachineSpec


@dataclass(frozen=True)
class RankPlacement:
    """Where one rank lives."""

    rank: int
    node: int
    local_rank: int
    gpu: int


class Topology:
    """Block placement of ``nranks`` ranks across nodes of a machine."""

    def __init__(
        self,
        nranks: int,
        ranks_per_node: int = 1,
        machine: MachineSpec = SUMMIT,
    ) -> None:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        if ranks_per_node <= 0:
            raise ValueError(f"ranks_per_node must be positive, got {ranks_per_node}")
        if ranks_per_node > machine.node.gpus:
            raise ValueError(
                f"ranks_per_node={ranks_per_node} exceeds the {machine.node.gpus} GPUs per node"
            )
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node
        self.machine = machine
        self.nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        if self.nnodes > machine.max_nodes:
            raise ValueError(
                f"{self.nnodes} nodes requested but {machine.name} has only {machine.max_nodes}"
            )

    def placement(self, rank: int) -> RankPlacement:
        """Node/local-rank/GPU of one rank (block placement, one GPU per rank)."""
        self._check_rank(rank)
        node = rank // self.ranks_per_node
        local = rank % self.ranks_per_node
        return RankPlacement(rank=rank, node=node, local_rank=local, gpu=local)

    def node_of(self, rank: int) -> int:
        """Node index of a rank."""
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when two ranks share a node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks placed on ``node``."""
        if node < 0 or node >= self.nnodes:
            raise ValueError(f"node {node} outside [0, {self.nnodes})")
        first = node * self.ranks_per_node
        return [r for r in range(first, min(first + self.ranks_per_node, self.nranks))]

    def _check_rank(self, rank: int) -> None:
        if rank < 0 or rank >= self.nranks:
            raise ValueError(f"rank {rank} outside [0, {self.nranks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.nranks} ranks on {self.nnodes} nodes "
            f"({self.ranks_per_node}/node) of {self.machine.name}>"
        )
