"""Nonblocking-communication requests."""

from __future__ import annotations

from typing import Callable, Optional

from repro.mpi.errors import MpiError
from repro.mpi.status import Status


class Request:
    """Handle for a nonblocking operation (``MPI_Request``).

    The simulation keeps nonblocking semantics simple and deadlock-free:

    * ``Isend`` performs its local work (datatype packing, posting the
      envelope) immediately and records the virtual time at which the send
      buffer may be reused; ``Wait`` advances the caller's clock there.
    * ``Irecv`` (and the receive side of nonblocking collectives) defers
      matching and unpacking to ``Wait``/``Test``; because sends never block
      on a thread level, deferring receives cannot deadlock.

    ``complete`` runs the deferred work and returns its :class:`Status`;
    ``ready`` is an optional nonblocking readiness probe (e.g. a router
    probe) that lets :meth:`Test` finish a deferred receive without blocking
    once its message has arrived.  ``arrival`` is an optional hint probe
    returning the virtual time at which the operation becomes completable
    (``None`` while unknown); :meth:`Waitany` uses it to block on the
    earliest-arriving request instead of list order.  Probes supplied by the
    TEMPI progress engine also advance deferred wire state (flushing batched
    sends), so ``Test``/``Testall`` genuinely make progress.
    """

    KINDS = ("send", "recv", "coll", "null")

    def __init__(
        self,
        kind: str,
        *,
        complete: Optional[Callable[[], Status]] = None,
        completion_time: Optional[float] = None,
        clock=None,
        ready: Optional[Callable[[], bool]] = None,
        arrival: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        if kind not in self.KINDS:
            raise MpiError(f"unknown request kind {kind!r}")
        self.kind = kind
        self._complete = complete
        self._completion_time = completion_time
        self._clock = clock
        self._ready = ready
        self._arrival = arrival
        self._done = False
        self._status = Status()

    # ------------------------------------------------------------------ waits
    def Wait(self) -> Status:
        """Block until the operation completes; returns its :class:`Status`."""
        if self._done:
            return self._status
        if self._complete is not None:
            self._status = self._complete()
        if self._completion_time is not None and self._clock is not None:
            self._clock.advance_to(self._completion_time)
        self._done = True
        return self._status

    def Test(self) -> tuple[bool, Optional[Status]]:
        """Nonblocking completion check.

        Sends complete as soon as their completion time has passed on the
        clock.  Deferred receives complete through :meth:`Wait`; when the
        request carries a readiness probe and the probe reports the message
        present, ``Test`` runs the (now nonblocking) completion itself.
        """
        if self._done:
            return True, self._status
        if self.kind == "send" and self._completion_time is not None and self._clock is not None:
            if self._clock.now >= self._completion_time:
                self._done = True
                return True, self._status
        if self._ready is not None:
            if self._ready():
                return True, self.Wait()
            return False, None
        if self._arrival is not None and self._clock is not None:
            # No bespoke probe: the operation is completable exactly when its
            # known arrival time has passed on the caller's clock.
            hint = self._arrival()
            if hint is not None and hint <= self._clock.now:
                return True, self.Wait()
        return False, None

    @property
    def completed(self) -> bool:
        """True once :meth:`Wait` (or a successful :meth:`Test`) has run."""
        return self._done

    def arrival_hint(self) -> Optional[float]:
        """Virtual time this request becomes completable, when known.

        Sends report their completion time; receives probe for a posted
        message's arrival.  ``None`` means the operation's arrival is not yet
        determined (e.g. the matching message has not been posted).
        """
        if self._completion_time is not None:
            return self._completion_time
        if self._arrival is not None:
            return self._arrival()
        return None

    # ------------------------------------------------------------- aggregates
    @staticmethod
    def Waitall(requests: list["Request"]) -> list[Status]:
        """Wait for every request; returns their statuses in order."""
        return [request.Wait() for request in requests]

    @staticmethod
    def Waitany(requests: list["Request"]) -> tuple[int, Status]:
        """Wait for (at least) one request; returns ``(index, status)``.

        Per the MPI contract, an already-completed (or nonblockingly
        completable) active request is returned before blocking on anything.
        Only when no request can complete without waiting does ``Waitany``
        block — on the active request with the **earliest known arrival
        time** (falling back to list order when no arrival is known), so the
        caller's clock advances to the first completion rather than to
        whichever request happened to be listed first.  A list of nothing but
        null requests can never complete an operation — MPI returns
        ``MPI_UNDEFINED`` there, and a caller looping on ``Waitany`` until
        every request finishes would spin forever — so it raises instead.
        """
        if not requests:
            raise MpiError("Waitany requires at least one request")
        active = [index for index, request in enumerate(requests) if request.kind != "null"]
        if not active:
            raise MpiError(
                "Waitany on a list of null requests would never complete an operation"
            )
        for index in active:
            if requests[index].completed:
                return index, requests[index].Wait()
        for index in active:
            done, status = requests[index].Test()
            if done:
                return index, status
        earliest = active[0]
        earliest_time: Optional[float] = None
        for index in active:
            hint = requests[index].arrival_hint()
            if hint is not None and (earliest_time is None or hint < earliest_time):
                earliest, earliest_time = index, hint
        return earliest, requests[earliest].Wait()

    @staticmethod
    def Testall(requests: list["Request"]) -> tuple[bool, Optional[list[Status]]]:
        """Nonblocking :meth:`Waitall`: all-done flag plus statuses when done."""
        outcomes = [request.Test() for request in requests]
        if all(done for done, _ in outcomes):
            return True, [status for _, status in outcomes]
        return False, None


#: A request that is already complete (``MPI_REQUEST_NULL`` analogue).
def null_request() -> Request:
    request = Request("null")
    request._done = True  # noqa: SLF001 - factory for the null handle
    return request
