"""Figure 9: raw transfer measurements and partial method models.

Fig. 9a plots the four measured primitives (``T_d2h``, ``T_h2d``,
``T_cpu-cpu``, ``T_gpu-gpu``) against message size; Fig. 9b combines them
into the three send methods of Eqs. 1-3 with pack time held at zero, showing
that the staged method is never preferable and that the CUDA-aware path's
higher latency floor gives one-shot an edge for small messages.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, format_us
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import measure_system

SIZES = [1 << p for p in range(0, 21, 2)]


@pytest.mark.benchmark(group="fig09")
def test_fig09a_transfer_curves(benchmark, report):
    measurement = benchmark.pedantic(
        lambda: measure_system(SUMMIT, sizes=SIZES, block_lengths=[8]),
        rounds=1,
        iterations=1,
    )

    rows = []
    for index, size in enumerate(measurement.sizes):
        rows.append(
            [
                f"{size:,}",
                format_us(measurement.t_d2h[index]),
                format_us(measurement.t_h2d[index]),
                format_us(measurement.t_cpu_cpu[index]),
                format_us(measurement.t_gpu_gpu[index]),
            ]
        )
    print("\nFigure 9a — transfer latency vs. size (simulated us)")
    print(format_table(["size (B)", "T_d2h", "T_h2d", "T_cpu-cpu", "T_gpu-gpu"], rows))

    cpu_floor = measurement.t_cpu_cpu[0]
    gpu_floor = measurement.t_gpu_gpu[0]
    # Shape claims from the paper: ~1.3 us CPU floor, ~6 us CUDA-aware floor,
    # all four curves monotone in size.
    assert cpu_floor < gpu_floor
    for curve in (measurement.t_cpu_cpu, measurement.t_gpu_gpu, measurement.t_d2h, measurement.t_h2d):
        assert list(curve) == sorted(curve)

    report.add(
        "Fig. 9a",
        "small-message latency floors (CPU vs CUDA-aware path)",
        "~1.3 us vs ~6 us",
        f"{cpu_floor * 1e6:.1f} us vs {gpu_floor * 1e6:.1f} us",
        matches_shape=cpu_floor < gpu_floor,
    )


@pytest.mark.benchmark(group="fig09")
def test_fig09b_partial_method_models(benchmark, summit_model, report):
    def evaluate():
        rows = []
        for size in SIZES:
            t_device = summit_model.transfer_time("gpu_gpu", size)
            t_oneshot = summit_model.transfer_time("cpu_cpu", size)
            t_staged = (
                summit_model.transfer_time("d2h", size)
                + summit_model.transfer_time("cpu_cpu", size)
                + summit_model.transfer_time("h2d", size)
            )
            rows.append((size, t_device, t_oneshot, t_staged))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    print("\nFigure 9b — partial models (pack/unpack = 0), simulated us")
    print(
        format_table(
            ["size (B)", "T_device", "T_oneshot", "T_staged"],
            [
                [f"{size:,}", format_us(device), format_us(oneshot), format_us(staged)]
                for size, device, oneshot, staged in rows
            ],
        )
    )

    # Shape claims: staged is never below device (it adds two copies to the
    # same wire time), and the one-shot partial model is the cheapest curve.
    assert all(staged >= device for _, device, oneshot, staged in rows)
    assert all(oneshot <= device for _, device, oneshot, _ in rows)

    report.add(
        "Fig. 9b",
        "staged method never preferable to device",
        "no crossover",
        "no crossover",
        matches_shape=True,
        note="one-shot partial model cheapest at every size, as in the paper",
    )
