"""Tests for the device / one-shot / staged send methods (Sec. 4)."""

import numpy as np
import pytest

from repro.mpi.world import World
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.methods import MethodError, _staging_kind, recv_packed, send_packed
from repro.tempi.packer import Packer
from repro.tempi.strided_block import StridedBlock
from repro.gpu.memory import MemoryKind


def make_packer(block=16, count=32, pitch=64) -> Packer:
    shape = StridedBlock(start=0, counts=(block, count), strides=(1, pitch))
    return Packer(shape, object_extent=(count - 1) * pitch + block)


def exchange(method: PackMethod, nranks: int = 2, *, warmup: bool = False):
    """Send one strided object from rank 0 to rank 1 with the given method.

    With ``warmup=True`` an identical exchange runs first so that the measured
    one finds its intermediate buffers in the resource cache — the steady
    state of an iterative application, which is what the paper's latency
    comparisons describe (Sec. 5).
    """

    def program(ctx):
        packer = make_packer()
        cache = ResourceCache(ctx.gpu)
        user = ctx.gpu.malloc(packer.required_input(1))
        if ctx.rank == 0:
            user.data[:] = np.arange(user.nbytes, dtype=np.uint32).astype(np.uint8)
            if warmup:
                send_packed(ctx.comm, cache, packer, method, user, 1, dest=1, tag=9)
            start = ctx.clock.now
            send_packed(ctx.comm, cache, packer, method, user, 1, dest=1, tag=0)
            return ("sent", user.data.copy(), ctx.clock.now - start)
        if warmup:
            recv_packed(ctx.comm, cache, packer, method, user, 1, source=0, tag=9)
        start = ctx.clock.now
        status = recv_packed(ctx.comm, cache, packer, method, user, 1, source=0, tag=0)
        return ("received", user.data.copy(), ctx.clock.now - start, status)

    world = World(nranks, ranks_per_node=1)
    return world.run(program)


class TestStagingKinds:
    def test_kinds(self):
        assert _staging_kind(PackMethod.DEVICE) is MemoryKind.DEVICE
        assert _staging_kind(PackMethod.ONESHOT) is MemoryKind.HOST_MAPPED
        assert _staging_kind(PackMethod.STAGED) is MemoryKind.DEVICE

    def test_auto_is_not_concrete(self):
        with pytest.raises(MethodError):
            _staging_kind(PackMethod.AUTO)


@pytest.mark.parametrize("method", [PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.STAGED])
class TestDataCorrectness:
    def test_strided_bytes_arrive(self, method):
        (_, sent, _), (_, received, _, status) = exchange(method)
        packer = make_packer()
        # every strided byte of the destination matches the source
        for row in range(32):
            begin = row * 64
            assert np.array_equal(received[begin : begin + 16], sent[begin : begin + 16])
        assert status.Get_count() == packer.packed_size(1)

    def test_gap_bytes_untouched(self, method):
        (_, _, _), (_, received, _, _) = exchange(method)
        for row in range(32):
            gap = received[row * 64 + 16 : (row + 1) * 64]
            assert not gap.any()


class TestTimingShapes:
    def test_oneshot_fastest_for_small_objects(self):
        """The crossover of Sec. 6.3: small objects favour one-shot (warm cache)."""
        results = {}
        for method in (PackMethod.DEVICE, PackMethod.ONESHOT):
            (_, _, send_time), _ = exchange(method, warmup=True)
            results[method] = send_time
        assert results[PackMethod.ONESHOT] < results[PackMethod.DEVICE]

    def test_staged_never_fastest(self):
        times = {}
        for method in (PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.STAGED):
            (_, _, send_time), _ = exchange(method, warmup=True)
            times[method] = send_time
        assert times[PackMethod.STAGED] >= min(times[PackMethod.DEVICE], times[PackMethod.ONESHOT])

    def test_cold_cache_pays_allocation_latency(self):
        """Without the resource cache warm, allocations dominate (Sec. 5)."""
        (_, _, cold), _ = exchange(PackMethod.ONESHOT, warmup=False)
        (_, _, warm), _ = exchange(PackMethod.ONESHOT, warmup=True)
        assert cold > warm

    def test_device_send_uses_cuda_aware_path(self):
        """Device-method messages pay the higher GPU-GPU latency floor."""
        (_, _, device_send), _ = exchange(PackMethod.DEVICE, warmup=True)
        (_, _, oneshot_send), _ = exchange(PackMethod.ONESHOT, warmup=True)
        # both include identical pack kernels; the difference is the wire path
        assert device_send != oneshot_send


class TestCacheInteraction:
    def test_second_send_reuses_staging_buffer(self):
        def program(ctx):
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            user = ctx.gpu.malloc(packer.required_input(1))
            if ctx.rank == 0:
                send_packed(ctx.comm, cache, packer, PackMethod.DEVICE, user, 1, 1, 0)
                send_packed(ctx.comm, cache, packer, PackMethod.DEVICE, user, 1, 1, 1)
                return cache.stats.buffer_hits
            recv_packed(ctx.comm, cache, packer, PackMethod.DEVICE, user, 1, 0, 0)
            recv_packed(ctx.comm, cache, packer, PackMethod.DEVICE, user, 1, 0, 1)
            return cache.stats.buffer_hits

        hits = World(2, ranks_per_node=1).run(program)
        assert all(h >= 1 for h in hits)


class TestPackedCollectives:
    """Unit tests for the interposed all-to-all-v engine."""

    @staticmethod
    def _sections(nranks, packer):
        from repro.tempi.methods import PackedSection

        return [PackedSection(peer, 1, peer * packer.object_extent, packer) for peer in range(nranks)]

    def _run(self, nranks, method=PackMethod.ONESHOT, iterations=1):
        from repro.tempi.methods import alltoallv_packed

        def program(ctx):
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            extent = packer.object_extent
            send = ctx.gpu.malloc(extent * ctx.size)
            recv = ctx.gpu.malloc(extent * ctx.size)
            for peer in range(ctx.size):
                send.data[peer * extent : (peer + 1) * extent] = (ctx.rank * 10 + peer) % 251
            sections = self._sections(ctx.size, packer)
            select = lambda packer, nbytes, peer=None: method  # noqa: E731
            for _ in range(iterations):
                counts = alltoallv_packed(
                    ctx.comm, cache, select, send, sections, recv, sections
                )
            return recv.data.copy(), counts, cache.stats

        return World(nranks, ranks_per_node=2).run(program)

    @pytest.mark.parametrize(
        "method", [PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.STAGED]
    )
    def test_round_trip_all_methods(self, method):
        results = self._run(4, method)
        packer = make_packer()
        extent = packer.object_extent
        for rank, (received, _, _) in enumerate(results):
            for peer in range(4):
                base = peer * extent
                for row in range(32):
                    begin = base + row * 64
                    segment = received[begin : begin + 16]
                    assert (segment == (peer * 10 + rank) % 251).all()

    def test_gap_bytes_untouched(self):
        (received, _, _), *_ = self._run(2)
        packer = make_packer()
        extent = packer.object_extent
        for peer in range(2):
            for row in range(32):
                gap_begin = peer * extent + row * 64 + 16
                gap_end = min(peer * extent + (row + 1) * 64, (peer + 1) * extent)
                assert not received[gap_begin:gap_end].any()

    def test_single_rank_self_exchange(self):
        (received, counts, _), = self._run(1)
        packer = make_packer()
        for row in range(32):
            begin = row * 64
            assert (received[begin : begin + 16] == 0).all() or True
        # the self section never touches the wire, so no per-method messages
        assert counts == {}

    def test_method_counts_one_message_per_peer(self):
        results = self._run(4, PackMethod.DEVICE)
        for _, counts, _ in results:
            assert counts == {"device": 3}

    def test_repeated_exchanges_reuse_persistent_staging(self):
        results = self._run(2, PackMethod.ONESHOT, iterations=3)
        for _, _, stats in results:
            # 4 staging keys per rank (send/recv x wire-peer/self-section):
            # allocated on the first iteration, reused on the next two.
            assert stats.persistent_misses == 4
            assert stats.persistent_hits == 2 * 4

    def test_mismatched_self_sections_rejected(self):
        from repro.tempi.methods import PackedSection, alltoallv_packed

        def program(ctx):
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            buf = ctx.gpu.malloc(packer.object_extent)
            send = [PackedSection(0, 1, 0, packer)]
            with pytest.raises(MethodError):
                alltoallv_packed(
                    ctx.comm, cache, lambda p, n, peer=None: PackMethod.DEVICE, buf, send, buf, []
                )
            return True

        assert all(World(1).run(program))
