"""The progress engine: deferred wire state between the executor and the NIC.

PR 2's plan executor computed every message's arrival the moment it was
posted, against a NIC cursor that lived *inside one plan execution*.  The
:class:`ProgressEngine` is the per-rank layer that owns that state across
plans instead:

* **Cross-plan NIC accounting** — with ``TempiConfig(progress="shared")``
  (the default) every wire reservation goes through the world's shared
  :class:`~repro.machine.nic.NicTimeline`, so concurrent plans contend for
  the rank's injection port and per-peer links.  ``progress="per_plan"``
  reproduces the PR-2 schedule (a fresh cursor per plan, no cross-plan
  contention) for ablations — ``bench_fig15_contention.py`` measures the
  difference.
* **Duplex (receive-side) accounting** — with ``TempiConfig(nic="duplex")``
  (the default, shared mode only) every plan-posted message additionally
  carries its NIC identity ``(post_time, source, seq, wire_s)`` on the
  envelope, and the *receiving* rank commits it to its own ingestion port
  when the receive completes (:meth:`ingest_one` / :meth:`ingest_batch`,
  batches served in the deterministic ``(post_time, source, seq)`` order)::

      begin    = max(arrival - wire, ingest_free)
      landing  = begin + wire                      # what Wait advances to
      ingest_free = begin + overlap * wire

  so an incast queues at the hot receiver while symmetric traffic (arrivals
  already spaced by the senders' injection ports) passes undelayed, and the
  ``Wait``/``Test``/``Waitany`` arrival hints (:meth:`arrival_preview`)
  reflect the receiver's backlog.  ``nic="inject_only"`` skips all of this —
  the envelope's sender-computed arrival is final, bit-identical to the
  PR-3/PR-4 accounting.
* **Small-plan batching** — consecutive sub-eager-threshold nonblocking send
  plans to the same peer are coalesced: each plan's pack is issued
  immediately (exactly as an unbatched send would be), but the bytes ride
  **one** posted wire message reserved when the slowest pack completes —
  one latency floor and one NIC slot for the whole burst instead of one per
  plan.  Delivery stays byte-for-byte identical: every constituent keeps its
  own envelope, tag and payload; only the wire timing is shared (the burst's
  ingestion occupancy is split across constituents pro rata by size, so the
  receive side prices the batch once too).
* **Test-driven progress** — ``Request.Test``/``Testall``/``Wait`` on any
  engine-backed request call :meth:`progress` first, which flushes pending
  batches, so testing a request genuinely advances message arrival instead
  of polling a per-plan clock.

Batches are flushed at every progress point: any non-batchable plan
execution, any ``Wait``/``Test`` on an engine request, or an explicit
:meth:`flush`.  Flush-on-wait is what keeps deferral deadlock-free: MPI
requires every nonblocking send to eventually be completed, and completing it
forces the post.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.nic import IngestRecord, NicTimeline
from repro.machine.topology import PathSpec, Topology
from repro.mpi.p2p import Envelope
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.tempi.config import NIC_MODES, PackMethod
from repro.tempi.plan import MessagePlan

#: Progress-engine modes accepted by ``TempiConfig.progress``.
PROGRESS_MODES = ("shared", "per_plan")


class WireSlot(NamedTuple):
    """One reserved wire slot, with the identity its envelope must carry.

    ``seq >= 0`` marks a slot reserved on the shared timeline (and therefore
    subject to receive-side ingestion under duplex accounting); per-plan and
    engine-less reservations carry ``seq == -1`` and opt out.  A
    :class:`~typing.NamedTuple`: slots are minted once per posted message on
    the hot path and carry no mutable state.
    """

    start: float
    arrival: float
    wire_s: float
    seq: int = -1


class ProgressError(RuntimeError):
    """The engine was configured or driven impossibly."""


class PlanWindow:
    """One plan's view of the NIC while its post stages are being issued.

    In ``per_plan`` mode the window is the PR-2 cursor: it opens at the
    host's current virtual time and serialises only the messages of its own
    plan.  In ``shared`` mode it delegates every reservation to the shared
    :class:`~repro.machine.nic.NicTimeline`.
    """

    def __init__(self, engine: Optional["ProgressEngine"], now: float, wire_overlap: float) -> None:
        self._engine = engine
        self._nic_free = now
        self._wire_overlap = wire_overlap

    def reserve(self, peer: int, ready: float, wire_s: float, nbytes: int = 0) -> tuple[float, float]:
        """Place one message; returns ``(start, arrival)`` virtual times."""
        slot = self.reserve_wire(peer, ready, wire_s, nbytes)
        return slot.start, slot.arrival

    def reserve_wire(
        self, peer: int, ready: float, wire_s: float, nbytes: int = 0, *, device: bool = True
    ) -> WireSlot:
        """Place one message; returns the full :class:`WireSlot`."""
        if self._engine is not None and self._engine.shared:
            return self._engine.reserve_wire(peer, ready, wire_s, nbytes, device=device)
        start = max(ready, self._nic_free)
        self._nic_free = start + self._wire_overlap * wire_s
        return WireSlot(start=start, arrival=start + wire_s, wire_s=wire_s, seq=-1)


@dataclass(slots=True)
class _PendingSend:
    """One enqueued sub-eager send plan: packed, awaiting its batch's post."""

    plan: MessagePlan
    nbytes: int
    #: The packed payload buffer (held by the batch's staging tracker).
    payload: object
    #: Virtual time the pack's kernels complete (wire-readiness).
    ready: float
    #: Buffer-reuse completion time (pack done + injection overhead).
    completion: float


@dataclass(slots=True)
class _Batch:
    """The pending small-send queue of one ``(peer, wire-path)`` pair.

    Entries are packed the moment they are enqueued (on their own streams,
    exactly like unbatched sends); what the batch defers and coalesces is the
    **wire side** — one reservation, one latency floor, one posted message's
    worth of NIC occupancy for the whole burst.
    """

    peer: int
    device: bool
    staging: object
    entries: list[_PendingSend] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Combined payload bytes of the batch."""
        return sum(entry.nbytes for entry in self.entries)

    @property
    def ready(self) -> float:
        """Wire-readiness: when the slowest constituent pack completes."""
        return max(entry.ready for entry in self.entries)


class ProgressEngine:
    """Per-rank owner of deferred wire state for the plan executor."""

    def __init__(
        self,
        comm,
        cache,
        stats=None,
        *,
        mode: str = "shared",
        nic_mode: str = "duplex",
        batching: bool = True,
        batch_max_messages: int = 8,
        batch_booking: bool = True,
        batch_min_messages: int = 4,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        nic: Optional[NicTimeline] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        if mode not in PROGRESS_MODES:
            raise ProgressError(
                f"unknown progress mode {mode!r}; expected one of {PROGRESS_MODES}"
            )
        if nic_mode not in NIC_MODES:
            raise ProgressError(
                f"unknown nic mode {nic_mode!r}; expected one of {NIC_MODES}"
            )
        if batch_max_messages < 1:
            raise ProgressError("batch_max_messages must be at least 1")
        if batch_min_messages < 1:
            raise ProgressError("batch_min_messages must be at least 1")
        self.comm = comm
        self.cache = cache
        self.stats = stats
        self.mode = mode
        self.nic_mode = nic_mode
        self.wire_overlap = wire_overlap
        if nic is None:
            nic = getattr(getattr(comm, "world", None), "nic", None)
        self.nic = nic if nic is not None else NicTimeline(wire_overlap=wire_overlap)
        #: Batching coalesces deferred posts, which only makes sense when the
        #: shared timeline prices them; per-plan mode is the PR-2 ablation.
        self.batching = bool(batching) and mode == "shared"
        self.batch_max_messages = batch_max_messages
        #: Vectorized batch booking for homogeneous exchanges
        #: (``TempiConfig.batch_booking``): gated again per exchange by
        #: :meth:`batch_ready`, and structurally by :attr:`batch_capable`.
        self.batch_booking = bool(batch_booking)
        self.batch_min_messages = batch_min_messages
        self.eager_threshold = comm.network.machine.eager_threshold
        #: Topology the engine routes against.  ``None`` keeps the flat
        #: pre-topology books (no path resolution at all); a flat
        #: :class:`~repro.machine.topology.Topology` routes every post
        #: through path resolution but binds nothing (bit-identical,
        #: Hypothesis-pinned); a hierarchical one makes the wire price and
        #: the NIC binding per-path-class.
        self.topology = topology
        self.executor = None
        self._batches: dict[tuple[int, bool], _Batch] = {}

    # ---------------------------------------------------------------- wiring
    @property
    def shared(self) -> bool:
        """True when reservations go through the shared NIC timeline."""
        return self.mode == "shared"

    @property
    def duplex(self) -> bool:
        """True when receive-side (ingestion-port) accounting is active.

        Requires the shared timeline — the per-plan ablation has nothing to
        ingest against, so ``nic="duplex"`` degrades to inject-only there.
        """
        return self.shared and self.nic_mode == "duplex"

    def bind(self, executor) -> None:
        """Attach the executor whose stages the engine issues at flush time."""
        self.executor = executor

    # ------------------------------------------------------------------- NIC
    def plan_window(self) -> PlanWindow:
        """A NIC view for one plan's post stages (mode-appropriate)."""
        if self.shared:
            return PlanWindow(self, self.comm.clock.now, self.wire_overlap)
        return PlanWindow(None, self.comm.clock.now, self.wire_overlap)

    def message_time(self, nbytes: int, peer: int, device: bool) -> float:
        """Wire time to ``peer``, priced along the engine's topology.

        With no engine topology this is exactly the communicator's pricing
        (which itself goes hierarchical when the *world* carries a
        hierarchical topology); an engine topology — e.g. from
        ``TempiConfig(topology=...)`` — overrides it, so a config-only
        topology reprices without rebuilding the world.
        """
        if self.topology is not None and self.topology.hierarchical:
            return self.topology.message_time(
                self.comm.rank, peer, nbytes, device_buffers=device
            )
        return self.comm._message_time(nbytes, peer, device)

    def _route(self, peer: int, device: bool) -> Optional[PathSpec]:
        """The path a post to ``peer`` binds (``None`` without a topology).

        Resolution is memoised inside :class:`~repro.machine.topology.Topology`
        so the hot path is one dict probe; a *flat* topology resolves every
        pair to an unbinding path, which the NIC prices bit-identically to
        no path at all.
        """
        if self.topology is None:
            return None
        return self.topology.resolve(self.comm.rank, peer, device_buffers=device)

    def reserve(
        self, peer: int, ready: float, wire_s: float, nbytes: int = 0, *, device: bool = True
    ) -> tuple[float, float]:
        """Reserve one message's wire slot; returns ``(start, arrival)``.

        In ``per_plan`` mode a lone message never contends (PR-2 semantics);
        in ``shared`` mode it queues on the rank's injection port and the
        per-peer link, and stalls are counted on the interposer stats.
        """
        slot = self.reserve_wire(peer, ready, wire_s, nbytes, device=device)
        return slot.start, slot.arrival

    def reserve_wire(
        self, peer: int, ready: float, wire_s: float, nbytes: int = 0, *, device: bool = True
    ) -> WireSlot:
        """Reserve one message's wire slot; returns the full :class:`WireSlot`.

        The slot carries the NIC identity (``post_time``/``seq``) the
        executor stamps on the envelope, which is what lets the *receiving*
        rank commit the message to its ingestion port under duplex
        accounting.  ``device`` picks the wire path the route is resolved
        for (GPU rails vs host rails); it only matters under a topology.
        """
        if not self.shared:
            return WireSlot(start=ready, arrival=ready + wire_s, wire_s=wire_s, seq=-1)
        # Inject-only books never feed the destination's advisory pending
        # ledger: their messages are never ingested, so they must not look
        # like receive-side backlog to a duplex reader sharing the world.
        reservation = self.nic.reserve(
            self.comm.rank, peer, ready, wire_s, nbytes, ingest=self.duplex,
            path=self._route(peer, device),
        )
        if reservation.stalled and self.stats is not None:
            self.stats.contention_stalls += 1
        return WireSlot(
            start=reservation.start,
            arrival=reservation.arrival,
            wire_s=wire_s,
            seq=reservation.seq,
        )

    @property
    def batch_capable(self) -> bool:
        """True when batched booking may engage at all.

        Requires the knob, the shared timeline, and a *plain*
        :class:`~repro.machine.nic.NicTimeline`: under the clock sanitizer the
        engine holds a recording proxy whose audit hooks wrap the scalar
        entry points, and a batch call would silently bypass them — so
        sanitized runs (and any other instrumented timeline) fall back to
        scalar booking automatically.
        """
        return (
            self.batch_booking
            and self.shared
            and isinstance(self.nic, NicTimeline)
        )

    def batch_ready(self, count: int) -> bool:
        """True when a ``count``-message exchange should book as one batch."""
        return count >= self.batch_min_messages and self.batch_capable

    def reserve_wire_batch(
        self,
        peers: Sequence[int],
        ready: Sequence[float],
        wire_s: Sequence[float],
        nbytes: int,
        *,
        device: bool = True,
    ) -> list[WireSlot]:
        """Reserve one homogeneous exchange's wire slots in a single call.

        Exactly :meth:`reserve_wire` per entry — same cursors, same stall
        accounting, same envelope identities — but priced through
        :meth:`~repro.machine.nic.NicTimeline.reserve_batch`, which runs the
        scalar rules as numpy column steps (or a serialised in-lock loop when
        the route couples messages).  Callers gate on :meth:`batch_ready`.
        """
        if not self.shared:
            return [
                WireSlot(start=r, arrival=r + w, wire_s=w, seq=-1)
                for r, w in zip(ready, wire_s)
            ]
        paths = [self._route(peer, device) for peer in peers]
        batch = self.nic.reserve_batch(
            [self.comm.rank],
            np.asarray([peers], dtype=np.int64),
            np.asarray([ready], dtype=np.float64),
            np.asarray([wire_s], dtype=np.float64),
            int(nbytes),
            ingest=self.duplex,
            paths=[paths] if any(path is not None for path in paths) else None,
        )
        if self.stats is not None:
            self.stats.contention_stalls += int(
                np.count_nonzero(batch.stalled_s[0] > 0)
            )
        starts = batch.start[0].tolist()
        arrivals = batch.arrival[0].tolist()
        seqs = batch.seq[0].tolist()
        return [
            WireSlot(start=start, arrival=arrival, wire_s=w, seq=seq)
            for start, arrival, w, seq in zip(starts, arrivals, wire_s, seqs)
        ]

    # ------------------------------------------------------------- ingestion
    def _ingest_record(self, envelope: Envelope) -> IngestRecord:
        """The receive-side NIC identity an envelope carries.

        Under a topology with shared rails, inter-node messages additionally
        land on this rank's ingestion *rail* cursor — the same
        ``(node, rail)`` key the sender's reservation pre-registered, since
        both are pure functions of placement.  Intra-node traffic (and every
        flat topology) binds no rail, keeping those books bit-identical.
        """
        rail = None
        if self.topology is not None and not self.topology.same_node(
            envelope.source, self.comm.rank
        ):
            rail = self.topology.rail_key(self.comm.rank)
        return IngestRecord(
            post_time=envelope.post_time,
            source=envelope.source,
            seq=envelope.source_seq,
            wire_s=envelope.wire_s,
            arrival=envelope.available_at,
            rail=rail,
        )

    def _ingestable(self, envelope: Envelope) -> bool:
        """True when the envelope participates in ingestion pricing."""
        return self.duplex and envelope.wire_s > 0 and envelope.source_seq >= 0

    def ingest_one(self, envelope: Envelope) -> float:
        """Commit one received message to this rank's ingestion port.

        Returns the (possibly delayed) landing time ``Wait`` should advance
        to.  Under ``nic="inject_only"`` — or for envelopes that never went
        through the shared timeline (system path, serial engine) — this is
        exactly the sender-computed ``available_at``, bit-for-bit.
        """
        if not self._ingestable(envelope):
            return envelope.available_at
        landing = self.nic.ingest(self.comm.rank, [self._ingest_record(envelope)])[0]
        if landing > envelope.available_at and self.stats is not None:
            self.stats.ingest_stalls += 1
        return landing

    def ingest_batch(self, envelopes: Sequence[Envelope]) -> list[float]:
        """Commit one plan's receive set to the ingestion port, as a batch.

        The batch is served in the deterministic ``(post_time, source, seq)``
        order whatever wall-clock order the posts happened in — this is the
        cross-rank ordering that makes duplex arrivals reproducible
        regardless of executor interleaving.  Returns each envelope's landing
        time in input order.
        """
        eligible = [e for e in envelopes if self._ingestable(e)]
        if not eligible:
            return [envelope.available_at for envelope in envelopes]
        landings = dict(
            zip(
                (id(e) for e in eligible),
                self.nic.ingest(self.comm.rank, [self._ingest_record(e) for e in eligible]),
            )
        )
        if self.stats is not None:
            for envelope in eligible:
                if landings[id(envelope)] > envelope.available_at:
                    self.stats.ingest_stalls += 1
        return [landings.get(id(e), e.available_at) for e in envelopes]

    def arrival_preview(self, envelope: Envelope) -> float:
        """The landing a message would get as the next ingestion commit.

        Non-committing and receiver-state-only (hence deterministic): this is
        the arrival hint ``Test``/``Waitany`` see before the receive actually
        completes.  Identity under ``nic="inject_only"``.
        """
        if not self._ingestable(envelope):
            return envelope.available_at
        return self.nic.ingest_preview(
            self.comm.rank, envelope.available_at, envelope.wire_s
        )

    # -------------------------------------------------------------- batching
    def offer_send(self, plan: MessagePlan) -> Optional[Request]:
        """Consider a nonblocking send plan for batching.

        Returns the request driving the deferred send, or ``None`` when the
        plan is not batchable (batching off, message at/above the eager
        threshold) — the caller then executes it immediately.
        """
        if not self.batching or self.executor is None:
            return None
        if plan.op != "send" or not plan.nonblocking:
            return None
        post = plan.post_stages[0]
        if post.nbytes >= self.eager_threshold:
            return None
        from repro.tempi.executor import _StagingTracker

        device = post.pack.method is PackMethod.DEVICE
        key = (post.peer, device)
        # Batches are per (peer, wire path), but MPI non-overtaking is per
        # peer: a pending batch on the *other* path must be posted before
        # this message may be enqueued, or same-tag receives would match out
        # of order when the method selector alternates.
        self._flush_batch((post.peer, not device))
        batch = self._batches.get(key)
        if batch is not None and (
            len(batch.entries) >= self.batch_max_messages
            or batch.nbytes + post.nbytes > self.eager_threshold
        ):
            # Keep the coalesced message eager and the burst bounded.
            self._flush_batch(key)
            batch = None
        if batch is None:
            batch = self._batches[key] = _Batch(
                peer=post.peer, device=device, staging=_StagingTracker(self.cache)
            )
        # Pack now, exactly like an unbatched send (own stream, host returns
        # after the launches); only the wire message is deferred to the flush.
        comm = self.comm
        stream = self.cache.get_stream()
        try:
            payload, ready = self.executor._pack_stage(
                plan.pack_stages[0], plan.send_buffer, batch.staging, stream
            )
        finally:
            self.cache.put_stream(stream)
        entry = _PendingSend(
            plan=plan,
            nbytes=post.nbytes,
            payload=payload,
            ready=ready,
            completion=ready + self.executor._injection_overhead(),
        )
        batch.entries.append(entry)
        if self.stats is not None:
            self.stats.stages_overlapped += 1

        def complete() -> Status:
            """Flush (posting the batch) and advance to buffer-reuse time."""
            self.progress()  # the send's Wait is a progress point: post first
            comm.clock.advance_to(entry.completion)
            return Status()

        def ready_probe() -> bool:
            """Progress, then check buffer-reuse completion."""
            self.progress()
            return comm.clock.now >= entry.completion

        def arrival() -> Optional[float]:
            """Buffer-reuse time (known at enqueue for a batched send)."""
            return entry.completion

        return Request("send", complete=complete, ready=ready_probe, arrival=arrival)

    def pending_sends(self, peer: Optional[int] = None) -> int:
        """Enqueued-but-unposted send plans (for tests and stats)."""
        return sum(
            len(batch.entries)
            for key, batch in self._batches.items()
            if peer is None or key[0] == peer
        )

    def progress(self) -> None:
        """Advance deferred wire state: flush every pending batch.

        This is the engine's progress point — called from ``Wait``/``Test``
        of engine requests and from every non-batchable plan execution, so
        deferred posts can never be overtaken by later traffic and testing a
        request genuinely moves messages toward arrival.
        """
        self.flush()

    def flush(self, peer: Optional[int] = None) -> None:
        """Post pending batches (all of them, or one peer's)."""
        keys = [key for key in self._batches if peer is None or key[0] == peer]
        for key in keys:
            self._flush_batch(key)

    def _flush_batch(self, key: tuple[int, bool]) -> None:
        """Post one pending batch as a single coalesced wire message."""
        batch = self._batches.pop(key, None)
        if batch is None or not batch.entries:
            return
        if self.executor is None:
            raise ProgressError("progress engine flushed before an executor was bound")
        executor = self.executor
        try:
            # One posted message: the burst's combined bytes take one wire
            # slot (one latency floor instead of one per plan), entering the
            # NIC when the slowest constituent pack is ready.  Each
            # constituent keeps its own envelope — posted in enqueue order,
            # sharing the batch arrival — so delivery is byte-for-byte
            # identical to the unbatched schedule.  The batch's ingestion
            # occupancy is split across constituents pro rata by size (their
            # shares sum to the one wire message's occupancy), each envelope
            # carrying its own per-source seq so receive-side ordering stays
            # well defined.
            wire = self.message_time(batch.nbytes, batch.peer, batch.device)
            slot = self.reserve_wire(
                batch.peer, batch.ready, wire, batch.nbytes, device=batch.device
            )
            for index, entry in enumerate(batch.entries):
                post = entry.plan.post_stages[0]
                if slot.seq >= 0:
                    share = wire * entry.nbytes / batch.nbytes if batch.nbytes else 0.0
                    # The first constituent inherits the reservation's seq, so
                    # ingesting it consumes the batch's pending-ledger record;
                    # later constituents draw fresh (larger) seqs and keep the
                    # deterministic enqueue order.
                    seq = slot.seq if index == 0 else self.nic.next_seq(self.comm.rank)
                else:
                    share, seq = 0.0, -1
                executor._post(
                    post.peer,
                    entry.plan.tag,
                    entry.payload,
                    post.nbytes,
                    slot.arrival,
                    wire_s=share,
                    post_time=slot.start,
                    source_seq=seq,
                )
        finally:
            batch.staging.release()
        if self.stats is not None and len(batch.entries) > 1:
            self.stats.batched_plans += len(batch.entries)

    # -------------------------------------------------------------- arrivals
    def arrived(self, peer: int, tag: int) -> bool:
        """True when a matching message is present *and* virtually arrived.

        Runs :meth:`progress` first, so a ``Test`` poll advances deferred
        wire state before probing — the progress-thread behaviour the
        roadmap asked for, without a thread.  Under duplex accounting the
        probe compares against the ingestion-adjusted landing, so ``Test``
        reflects the receiver's own backlog, not just the sender's schedule.
        """
        self.progress()
        comm = self.comm
        envelope = comm.router.probe(comm.rank, peer, tag, comm.context)
        return envelope is not None and self.arrival_preview(envelope) <= comm.clock.now
