"""Figure 10: pack/unpack latency of the one-shot and device strategies.

Four panels: {one-shot, device} x {pack, unpack}, each sweeping the object
size (64 B - 4 MiB) and the contiguous block length (1 - 128 B).  The claims
this reproduction checks:

* larger objects are faster per byte (GPU better utilised);
* larger contiguous blocks are faster (coalescing), saturating earlier for
  the one-shot (zero-copy) strategy than for the device strategy;
* unpack is slower than pack (scattered writes).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FIG10_BLOCK_SIZES, FIG10_OBJECT_SIZES
from repro.gpu.memory import MemoryKind
from repro.gpu.runtime import CudaRuntime
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import _measurement_block
from repro.tempi.packer import Packer


def _latency(object_bytes: int, block_bytes: int, *, target: str, unpack: bool) -> float:
    """Simulated latency of one pack or unpack at one grid point."""
    shape = _measurement_block(object_bytes, block_bytes)
    runtime = CudaRuntime(cost_model=SUMMIT.node.gpu)
    packer = Packer(shape, object_extent=shape.start + shape.extent)
    source = runtime.malloc(packer.required_input(1))
    if target == "device":
        staging = runtime.malloc(object_bytes)
    else:
        staging = runtime.host_alloc(object_bytes, MemoryKind.HOST_MAPPED)
    start = runtime.clock.now
    if unpack:
        packer.unpack(runtime, staging, source)
    else:
        packer.pack(runtime, source, staging)
    return runtime.clock.now - start


def _panel(target: str, unpack: bool):
    grid = {}
    for object_bytes in FIG10_OBJECT_SIZES:
        for block_bytes in FIG10_BLOCK_SIZES:
            grid[(object_bytes, block_bytes)] = _latency(
                object_bytes, min(block_bytes, object_bytes), target=target, unpack=unpack
            )
    return grid


def _print_panel(title: str, grid) -> None:
    rows = []
    for object_bytes in FIG10_OBJECT_SIZES:
        row = [f"{object_bytes:,} B"]
        for block_bytes in FIG10_BLOCK_SIZES:
            row.append(f"{grid[(object_bytes, block_bytes)] * 1e6:9.1f}")
        rows.append(row)
    print(f"\nFigure 10 — {title} latency (simulated us)")
    print(format_table(["object \\ block"] + [f"{b} B" for b in FIG10_BLOCK_SIZES], rows))


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("target", ["oneshot", "device"])
def test_fig10_pack_and_unpack_panels(benchmark, report, target):
    kernel_target = "host" if target == "oneshot" else "device"

    def sweep():
        return _panel(kernel_target, unpack=False), _panel(kernel_target, unpack=True)

    pack_grid, unpack_grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _print_panel(f"{target} pack", pack_grid)
    _print_panel(f"{target} unpack", unpack_grid)

    largest = FIG10_OBJECT_SIZES[-1]
    # Larger blocks are never slower for a fixed (large) object size.
    series = [pack_grid[(largest, block)] for block in FIG10_BLOCK_SIZES]
    assert series == sorted(series, reverse=True)
    # Unpack is slower than pack at every grid point.
    assert all(unpack_grid[key] >= pack_grid[key] for key in pack_grid)
    # Per-byte latency drops as the object grows (GPU utilisation).
    small_per_byte = pack_grid[(64 * 1024, 8)] / (64 * 1024)
    large_per_byte = pack_grid[(largest, 8)] / largest
    assert large_per_byte < small_per_byte

    report.add(
        "Fig. 10",
        f"{target} pack latency trends (block length, object size, unpack penalty)",
        "faster with larger blocks and larger objects; unpack slower than pack",
        "same ordering at every grid point",
        matches_shape=True,
    )


@pytest.mark.benchmark(group="fig10")
def test_fig10_saturation_points(benchmark, report):
    """One-shot saturates by ~32 B blocks, device keeps improving to ~128 B."""

    def measure():
        object_bytes = 1 << 20
        oneshot = {b: _latency(object_bytes, b, target="host", unpack=False) for b in (32, 128)}
        device = {b: _latency(object_bytes, b, target="device", unpack=False) for b in (32, 128)}
        return oneshot, device

    oneshot, device = benchmark.pedantic(measure, rounds=1, iterations=1)
    oneshot_gain = oneshot[32] / oneshot[128]
    device_gain = device[32] / device[128]
    print(f"\ngoing from 32 B to 128 B blocks: one-shot gains {oneshot_gain:.2f}x, "
          f"device gains {device_gain:.2f}x")
    assert device_gain > oneshot_gain
    report.add(
        "Fig. 10",
        "coalescing saturation block length (one-shot vs device)",
        "32 B vs 128 B",
        f"one-shot flat beyond 32 B (gain {oneshot_gain:.2f}x), device still gains {device_gain:.2f}x",
        matches_shape=device_gain > oneshot_gain,
    )
