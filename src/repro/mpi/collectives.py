"""Collective operations.

Only a small set is needed by the paper's evaluation: ``Barrier`` for phase
timing, ``Bcast``/``Allgather``/``Allreduce`` for bookkeeping in the examples,
``Alltoallv`` / ``Neighbor_alltoallv`` for the 3-D stencil halo exchange
(Sec. 6.4), and ``Allgatherv`` (byte and datatype-carrying, the root-less
fan-out TEMPI also routes through plans).  All of them are composed from the
point-to-point router; their
virtual-time cost is charged analytically from the network model so that the
functional data movement (which is interleaved arbitrarily by the thread
scheduler) does not distort the reported latencies.

The all-to-all collectives come in two flavours:

* the **byte** signature (``sendtypes``/``recvtypes`` omitted), where counts
  and displacements are raw byte ranges of pre-packed buffers — the shape the
  original halo-exchange implementation uses after its explicit ``MPI_Pack``
  loop;
* the **datatype-carrying** signature, where each section is ``count``
  elements of a committed (possibly derived) datatype starting ``displ``
  bytes into the user buffer.  The system path packs every section with the
  per-block baseline engine — which is exactly what makes it slow for
  non-contiguous types, and what TEMPI's interposed collectives accelerate
  with one pack kernel per destination (Sec. 5).

Collective calls must be made by every rank of the communicator in the same
order, as in MPI; a per-communicator sequence number keeps successive
collectives from matching each other's messages.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.gpu.memory import HostBuffer, MemoryKind
from repro.mpi.datatype import Datatype
from repro.mpi.errors import MpiArgumentError
from repro.mpi.p2p import Envelope
from repro.mpi import typemap

#: Tag space reserved for collectives, far above what applications use.
_COLLECTIVE_TAG_BASE = 1_000_000_000


def _next_collective_tag(comm) -> int:
    sequence = getattr(comm, "_collective_sequence", 0)
    comm._collective_sequence = sequence + 1
    return _COLLECTIVE_TAG_BASE + sequence


def _post_raw(comm, dest: int, tag: int, payload: np.ndarray, available_at: float) -> None:
    comm.router.post(
        Envelope(
            source=comm.rank,
            dest=dest,
            tag=tag,
            context=comm.context,
            payload=np.ascontiguousarray(payload, dtype=np.uint8),
            available_at=available_at,
            device=False,
        )
    )


def _receive_raw(comm, source: int, tag: int) -> Envelope:
    return comm.router.receive(comm.rank, source, tag, comm.context)


def _arrival_probe(comm, tag: int, peers: Sequence[int]):
    """A ``Request.Test`` readiness probe for a split-phase collective.

    True once every expected peer's envelope is present *and* virtually
    arrived (``available_at`` passed on this rank's clock) — mailbox presence
    alone would make ``Test`` outcomes depend on the thread scheduler.
    """

    def ready() -> bool:
        for peer in peers:
            envelope = comm.router.probe(comm.rank, peer, tag, comm.context)
            if envelope is None or envelope.available_at > comm.clock.now:
                return False
        return True

    return ready


# --------------------------------------------------------------------------- #
# Barrier
# --------------------------------------------------------------------------- #

def barrier(comm) -> None:
    """Synchronise all ranks: clocks advance to the global maximum plus a
    logarithmic latency term (a dissemination barrier's critical path)."""
    import math

    latency = comm.network.machine.inter_cpu.latency_s
    rounds = max(1, math.ceil(math.log2(max(2, comm.size))))
    if comm.world is not None and comm.size > 1:
        latest = comm.world.barrier_wait(comm.rank, comm.clock.now)
        comm.clock.advance_to(latest)
    comm.clock.advance(rounds * latency)


# --------------------------------------------------------------------------- #
# Broadcast and object collectives
# --------------------------------------------------------------------------- #

def bcast(comm, spec, root: int = 0) -> None:
    """Broadcast the buffer contents of ``root`` to every rank (linear tree)."""
    if not 0 <= root < comm.size:
        raise MpiArgumentError(f"root {root} outside communicator of size {comm.size}")
    tag = _next_collective_tag(comm)
    buffer, count, datatype = comm._resolve(spec)
    nbytes = datatype.size * count
    if comm.rank == root:
        payload = buffer.data[:nbytes].copy()
        for peer in range(comm.size):
            if peer == root:
                continue
            duration = comm._message_time(nbytes, peer, buffer.is_device)
            _post_raw(comm, peer, tag, payload, comm.clock.now + duration)
        comm.clock.advance(comm._message_time(nbytes, (root + 1) % comm.size, buffer.is_device))
    else:
        envelope = _receive_raw(comm, root, tag)
        comm.clock.advance_to(envelope.available_at)
        buffer.data[: envelope.nbytes] = envelope.payload


def allgather_object(comm, value) -> list:
    """Gather one picklable object from every rank onto every rank."""
    gather_tag = _next_collective_tag(comm)
    reply_tag = _next_collective_tag(comm)
    blob = np.frombuffer(pickle.dumps(value), dtype=np.uint8)
    if comm.rank == 0:
        gathered = [None] * comm.size
        gathered[0] = value
        for _ in range(comm.size - 1):
            envelope = _receive_raw(comm, -1, gather_tag)
            comm.clock.advance_to(envelope.available_at)
            gathered[envelope.source] = pickle.loads(envelope.payload.tobytes())
        result_blob = np.frombuffer(pickle.dumps(gathered), dtype=np.uint8)
        for peer in range(1, comm.size):
            _post_raw(comm, peer, reply_tag, result_blob, comm.clock.now)
        return gathered
    _post_raw(comm, 0, gather_tag, blob, comm.clock.now)
    envelope = _receive_raw(comm, 0, reply_tag)
    comm.clock.advance_to(envelope.available_at)
    return pickle.loads(envelope.payload.tobytes())


def allreduce_scalar(comm, value: float, op: str = "sum") -> float:
    """Allreduce of one scalar with ``sum``, ``max`` or ``min``."""
    if op not in ("sum", "max", "min"):
        raise MpiArgumentError(f"unsupported reduction {op!r}")
    values = allgather_object(comm, float(value))
    if op == "sum":
        return float(sum(values))
    if op == "max":
        return float(max(values))
    return float(min(values))


#: Element-wise combiners of the vector ``allreduce`` (MPI_SUM/PROD/MIN/MAX).
_REDUCE_UFUNCS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def allreduce(comm, send_spec, recv_spec, op: str = "sum") -> None:
    """Naive vector allreduce: every rank fans its contribution to every peer.

    Each rank posts its raw send buffer to all ``N-1`` peers, collects the
    ``N-1`` contributions, and folds them element-wise in ascending-rank
    order (rank 0's vector first), so every rank applies the identical
    combine sequence.  This is the system path TEMPI falls back to *and*
    the reference schedule the interposed ring/tree/hierarchical plans are
    pinned against byte-for-byte (``tests/property/test_property_allreduce``).
    """
    ufunc = _REDUCE_UFUNCS.get(op)
    if ufunc is None:
        raise MpiArgumentError(
            f"unsupported reduction {op!r}; expected one of {tuple(_REDUCE_UFUNCS)}"
        )
    tag = _next_collective_tag(comm)
    send_buffer, send_count, send_type = comm._resolve(send_spec)
    recv_buffer, recv_count, recv_type = comm._resolve(recv_spec)
    if recv_type.numpy_dtype is None:
        raise MpiArgumentError(
            f"allreduce needs an elementary datatype, got {recv_type.name}"
        )
    dtype = np.dtype(recv_type.numpy_dtype)
    nbytes = recv_type.size * recv_count
    if send_type.size * send_count != nbytes:
        raise MpiArgumentError(
            f"allreduce send extent ({send_type.size * send_count} B) does not "
            f"match recv extent ({nbytes} B)"
        )
    payload = send_buffer.data[:nbytes].copy()
    for peer in range(comm.size):
        if peer == comm.rank:
            continue
        duration = comm._message_time(nbytes, peer, send_buffer.is_device)
        _post_raw(comm, peer, tag, payload, comm.clock.now + duration)
    if comm.size > 1:
        comm.clock.advance(
            comm._message_time(nbytes, (comm.rank + 1) % comm.size, send_buffer.is_device)
        )
    contributions = {comm.rank: payload}
    for _ in range(comm.size - 1):
        envelope = _receive_raw(comm, -1, tag)
        comm.clock.advance_to(envelope.available_at)
        if envelope.nbytes != nbytes:
            raise MpiArgumentError(
                f"rank {comm.rank} expected a {nbytes}-byte allreduce contribution "
                f"from rank {envelope.source}, got {envelope.nbytes}"
            )
        contributions[envelope.source] = envelope.payload
    accumulator = recv_buffer.data[:nbytes].view(dtype)
    for index, source in enumerate(sorted(contributions)):
        contribution = contributions[source][:nbytes].view(dtype)
        if index == 0:
            accumulator[:] = contribution
        else:
            ufunc(accumulator, contribution, out=accumulator)


# --------------------------------------------------------------------------- #
# All-to-all-v
# --------------------------------------------------------------------------- #

def _validate_vector_args(comm, counts: Sequence[int], displs: Sequence[int], what: str) -> None:
    if len(counts) != comm.size or len(displs) != comm.size:
        raise MpiArgumentError(
            f"{what} counts/displacements must have one entry per rank ({comm.size})"
        )
    if any(c < 0 for c in counts) or any(d < 0 for d in displs):
        raise MpiArgumentError(f"{what} counts and displacements must be non-negative")


def alltoallv_begin(
    comm,
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
):
    """Start a byte all-to-all-v: validate, post sends, copy the self section.

    Returns ``(finish, ready)``: ``finish`` receives every incoming section
    and charges the analytic wire cost — the split that lets ``Ialltoallv``
    defer its receive side to ``Request.Wait`` while sends are already in
    flight — and ``ready`` is the nonblocking arrival probe ``Test`` uses.
    """
    from repro.mpi.communicator import as_buffer

    _validate_vector_args(comm, sendcounts, senddispls, "send")
    _validate_vector_args(comm, recvcounts, recvdispls, "recv")
    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    tag = _next_collective_tag(comm)
    now = comm.clock.now

    # Post every outgoing section.
    for peer in range(comm.size):
        count = int(sendcounts[peer])
        if count == 0 or peer == comm.rank:
            continue
        offset = int(senddispls[peer])
        if offset + count > send.nbytes:
            raise MpiArgumentError("send section escapes the send buffer")
        _post_raw(comm, peer, tag, send.data[offset : offset + count].copy(), now)

    # Local section copies directly.
    local = int(sendcounts[comm.rank])
    if local:
        src = int(senddispls[comm.rank])
        dst = int(recvdispls[comm.rank])
        if local != int(recvcounts[comm.rank]):
            raise MpiArgumentError("self send/recv counts disagree")
        recv.data[dst : dst + local] = send.data[src : src + local]

    def finish() -> None:
        # Receive every incoming section.
        latest = now
        for peer in range(comm.size):
            count = int(recvcounts[peer])
            if count == 0 or peer == comm.rank:
                continue
            envelope = _receive_raw(comm, peer, tag)
            offset = int(recvdispls[envelope.source])
            expected = int(recvcounts[envelope.source])
            if envelope.nbytes != expected:
                raise MpiArgumentError(
                    f"rank {comm.rank} expected {expected} bytes from {envelope.source}, "
                    f"got {envelope.nbytes}"
                )
            if offset + envelope.nbytes > recv.nbytes:
                raise MpiArgumentError("receive section escapes the receive buffer")
            recv.data[offset : offset + envelope.nbytes] = envelope.payload
            latest = max(latest, envelope.available_at)

        # Charge the analytic per-rank cost once.
        comm.clock.advance_to(latest)
        per_pair = [max(int(s), int(r)) for s, r in zip(sendcounts, recvcounts)]
        device = send.is_device or recv.is_device
        comm.clock.advance(
            comm.network.alltoallv_time(per_pair, comm.topology, comm.rank, device_buffers=device)
        )

    wire_peers = [
        peer
        for peer in range(comm.size)
        if peer != comm.rank and int(recvcounts[peer])
    ]
    return finish, _arrival_probe(comm, tag, wire_peers)


def alltoallv(
    comm,
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
) -> None:
    """Exchange byte ranges with every rank (``MPI_Alltoallv``).

    Counts and displacements are in bytes; this matches the halo-exchange
    implementation the paper describes, which packs every halo into one byte
    buffer and exchanges it with a single all-to-all-v.
    """
    finish, _ = alltoallv_begin(
        comm, sendbuf, sendcounts, senddispls, recvbuf, recvcounts, recvdispls
    )
    finish()


def neighbor_alltoallv(
    comm,
    neighbors: Sequence[int],
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
) -> None:
    """``MPI_Neighbor_alltoallv`` over an explicit neighbour list.

    Equivalent to an :func:`alltoallv` whose counts are zero for every rank
    not in ``neighbors``; implemented exactly that way so the two share
    semantics and cost accounting.
    """
    finish, _ = neighbor_alltoallv_begin(
        comm, neighbors, sendbuf, sendcounts, senddispls, recvbuf, recvcounts, recvdispls
    )
    finish()


def neighbor_alltoallv_begin(
    comm,
    neighbors: Sequence[int],
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
):
    """Split-phase byte neighbour collective: expand the list, start, return
    ``(finish, ready)``."""
    if not (len(neighbors) == len(sendcounts) == len(senddispls) == len(recvcounts) == len(recvdispls)):
        raise MpiArgumentError("neighbour argument lists must have equal lengths")
    if len(set(neighbors)) != len(neighbors):
        raise MpiArgumentError(
            "neighbour list contains duplicates; aggregate per-destination sections "
            "and use Alltoallv instead (as the halo-exchange application does)"
        )
    full_sendcounts = [0] * comm.size
    full_senddispls = [0] * comm.size
    full_recvcounts = [0] * comm.size
    full_recvdispls = [0] * comm.size
    for index, peer in enumerate(neighbors):
        if not 0 <= peer < comm.size:
            raise MpiArgumentError(f"neighbour {peer} outside communicator of size {comm.size}")
        full_sendcounts[peer] = int(sendcounts[index])
        full_senddispls[peer] = int(senddispls[index])
        full_recvcounts[peer] = int(recvcounts[index])
        full_recvdispls[peer] = int(recvdispls[index])
    return alltoallv_begin(
        comm,
        sendbuf,
        full_sendcounts,
        full_senddispls,
        recvbuf,
        full_recvcounts,
        full_recvdispls,
    )


# --------------------------------------------------------------------------- #
# All-gather-v
# --------------------------------------------------------------------------- #

def allgatherv_begin(
    comm,
    sendbuf,
    sendcount: int,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
):
    """Start a byte all-gather-v: every rank's ``sendcount`` bytes to everyone.

    The root-less fan-out sibling of :func:`alltoallv_begin`: this rank posts
    one copy of its contribution to every peer and copies its own section
    directly.  Returns ``(finish, ready)`` with the same split-phase contract
    — ``finish`` receives every peer's contribution into ``recvdispls`` and
    charges the analytic wire cost once, ``ready`` is the arrival probe.
    """
    from repro.mpi.communicator import as_buffer

    _validate_vector_args(comm, recvcounts, recvdispls, "recv")
    sendcount = int(sendcount)
    if sendcount < 0:
        raise MpiArgumentError(f"sendcount must be non-negative, got {sendcount}")
    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    if sendcount > send.nbytes:
        raise MpiArgumentError("send section escapes the send buffer")
    if sendcount != int(recvcounts[comm.rank]):
        raise MpiArgumentError("this rank's contribution disagrees with its recv count")
    tag = _next_collective_tag(comm)
    now = comm.clock.now

    if sendcount:
        # Validate the self section before any post: an invalid call must
        # fail on this rank without leaving peers a half-completed collective.
        offset = int(recvdispls[comm.rank])
        if offset + sendcount > recv.nbytes:
            raise MpiArgumentError("receive section escapes the receive buffer")
        payload = send.data[:sendcount].copy()
        for peer in range(comm.size):
            if peer != comm.rank:
                _post_raw(comm, peer, tag, payload, now)
        recv.data[offset : offset + sendcount] = send.data[:sendcount]

    def finish() -> None:
        latest = now
        for peer in range(comm.size):
            count = int(recvcounts[peer])
            if count == 0 or peer == comm.rank:
                continue
            envelope = _receive_raw(comm, peer, tag)
            offset = int(recvdispls[envelope.source])
            expected = int(recvcounts[envelope.source])
            if envelope.nbytes != expected:
                raise MpiArgumentError(
                    f"rank {comm.rank} expected {expected} bytes from {envelope.source}, "
                    f"got {envelope.nbytes}"
                )
            if offset + envelope.nbytes > recv.nbytes:
                raise MpiArgumentError("receive section escapes the receive buffer")
            recv.data[offset : offset + envelope.nbytes] = envelope.payload
            latest = max(latest, envelope.available_at)

        comm.clock.advance_to(latest)
        per_pair = [max(sendcount, int(count)) for count in recvcounts]
        device = send.is_device or recv.is_device
        comm.clock.advance(
            comm.network.alltoallv_time(per_pair, comm.topology, comm.rank, device_buffers=device)
        )

    wire_peers = [
        peer
        for peer in range(comm.size)
        if peer != comm.rank and int(recvcounts[peer])
    ]
    return finish, _arrival_probe(comm, tag, wire_peers)


def allgatherv(
    comm,
    sendbuf,
    sendcount: int,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
) -> None:
    """Exchange byte contributions with every rank (``MPI_Allgatherv``)."""
    finish, _ = allgatherv_begin(comm, sendbuf, sendcount, recvbuf, recvcounts, recvdispls)
    finish()


# --------------------------------------------------------------------------- #
# Datatype-carrying all-to-all-v
# --------------------------------------------------------------------------- #

#: ``sendtypes``/``recvtypes`` arguments: one datatype for every section, or
#: one per section (per rank for Alltoallv, per list entry for the neighbour
#: variant).
TypesArg = Union[Datatype, Sequence[Datatype]]


@dataclass(frozen=True)
class TypedSection:
    """One section of a datatype-carrying all-to-all-v.

    ``count`` elements of ``datatype`` starting ``displ`` bytes into the user
    buffer, exchanged with ``peer``.  Several sections may address the same
    peer (the neighbour variant on small periodic grids); their packed bytes
    travel concatenated in section order, so sender and receiver must list
    sections of one pair in a mutually agreed order.
    """

    peer: int
    count: int
    displ: int
    datatype: Datatype

    @property
    def packed_bytes(self) -> int:
        return typemap.packed_size(self.datatype, self.count) if self.count else 0

    def check(self, comm, buffer, what: str) -> None:
        if not 0 <= self.peer < comm.size:
            raise MpiArgumentError(
                f"{what} peer {self.peer} outside communicator of size {comm.size}"
            )
        if self.count < 0 or self.displ < 0:
            raise MpiArgumentError(f"{what} counts and displacements must be non-negative")
        if self.count == 0:
            return
        self.datatype._check_committed()
        span = self.displ + (self.count - 1) * self.datatype.extent + self.datatype.ub
        if span > buffer.nbytes:
            raise MpiArgumentError(
                f"{what} section to/from peer {self.peer} spans {span} bytes, "
                f"escaping the {buffer.nbytes}-byte buffer"
            )


def normalize_types(types: TypesArg, nsections: int, what: str) -> list[Datatype]:
    """Expand a single datatype (or check a per-section list) to one per section."""
    if isinstance(types, Datatype):
        return [types] * nsections
    result = list(types)
    if len(result) != nsections:
        raise MpiArgumentError(
            f"{what} needs one datatype per section ({nsections}), got {len(result)}"
        )
    if not all(isinstance(t, Datatype) for t in result):
        raise MpiArgumentError(f"{what} must contain Datatype instances")
    return result


def build_sections(
    comm,
    buffer,
    peers: Sequence[int],
    counts: Sequence[int],
    displs: Sequence[int],
    types: TypesArg,
    what: str,
) -> list[TypedSection]:
    """Validate and assemble the section list of one typed collective side."""
    if not (len(peers) == len(counts) == len(displs)):
        raise MpiArgumentError(f"{what} argument lists must have equal lengths")
    datatypes = normalize_types(types, len(peers), what)
    sections = []
    for peer, count, displ, datatype in zip(peers, counts, displs, datatypes):
        section = TypedSection(int(peer), int(count), int(displ), datatype)
        section.check(comm, buffer, what)
        sections.append(section)
    return sections


def group_by_peer(sections: Sequence[TypedSection]) -> dict[int, list[TypedSection]]:
    """Nonempty sections grouped per peer, preserving section order."""
    groups: dict[int, list[TypedSection]] = {}
    for section in sections:
        if section.count:
            groups.setdefault(section.peer, []).append(section)
    return groups


def typed_exchange_begin(comm, send, send_sections, recv, recv_sections):
    """Start the system-MPI engine of the datatype-carrying all-to-all-v.

    Every outgoing section is packed with the per-block baseline engine
    (charging its one-memcpy-per-block cost on the virtual clock),
    concatenated per peer and posted; the self sections round-trip through a
    staging buffer immediately.  Returns ``(finish, ready)``: ``finish``
    receives and unpacks every incoming peer segment and charges the analytic
    wire cost once, exactly like the byte path so the two signatures are
    comparable — and so ``Ialltoallv`` can defer it to ``Request.Wait`` —
    and ``ready`` is the nonblocking arrival probe ``Test`` uses.
    """
    tag = _next_collective_tag(comm)
    send_groups = group_by_peer(send_sections)
    recv_groups = group_by_peer(recv_sections)
    now = comm.clock.now

    # Pack and post every outgoing peer segment.
    for peer, group in send_groups.items():
        if peer == comm.rank:
            continue
        total = sum(section.packed_bytes for section in group)
        staging = HostBuffer(total, MemoryKind.HOST_PINNED)
        offset = 0
        for section in group:
            offset = comm.baseline.pack(
                send, section.datatype, section.count, staging, offset, in_offset=section.displ
            )
        _post_raw(comm, peer, tag, staging.data, comm.clock.now)

    # Local sections round-trip through a staging buffer without the wire.
    local_send = send_groups.get(comm.rank, [])
    local_recv = recv_groups.get(comm.rank, [])
    if sum(s.packed_bytes for s in local_send) != sum(s.packed_bytes for s in local_recv):
        raise MpiArgumentError("self send/recv sections disagree on packed size")
    if local_send:
        total = sum(section.packed_bytes for section in local_send)
        staging = HostBuffer(total, MemoryKind.HOST_PINNED)
        offset = 0
        for section in local_send:
            offset = comm.baseline.pack(
                send, section.datatype, section.count, staging, offset, in_offset=section.displ
            )
        offset = 0
        for section in local_recv:
            offset = comm.baseline.unpack(
                staging, offset, recv, section.datatype, section.count, out_offset=section.displ
            )

    def finish() -> None:
        # Receive and unpack every incoming peer segment.
        latest = now
        for peer, group in recv_groups.items():
            if peer == comm.rank:
                continue
            expected = sum(section.packed_bytes for section in group)
            envelope = _receive_raw(comm, peer, tag)
            if envelope.nbytes != expected:
                raise MpiArgumentError(
                    f"rank {comm.rank} expected {expected} packed bytes from {peer}, "
                    f"got {envelope.nbytes}"
                )
            staging = HostBuffer(envelope.nbytes, MemoryKind.HOST_PINNED, _array=envelope.payload)
            offset = 0
            for section in group:
                offset = comm.baseline.unpack(
                    staging, offset, recv, section.datatype, section.count, out_offset=section.displ
                )
            latest = max(latest, envelope.available_at)

        # Charge the analytic wire cost once, mirroring the byte path.
        comm.clock.advance_to(latest)
        per_pair = [0] * comm.size
        for peer, group in send_groups.items():
            per_pair[peer] = max(per_pair[peer], sum(s.packed_bytes for s in group))
        for peer, group in recv_groups.items():
            per_pair[peer] = max(per_pair[peer], sum(s.packed_bytes for s in group))
        device = send.is_device or recv.is_device
        comm.clock.advance(
            comm.network.alltoallv_time(per_pair, comm.topology, comm.rank, device_buffers=device)
        )

    wire_peers = [peer for peer in recv_groups if peer != comm.rank]
    return finish, _arrival_probe(comm, tag, wire_peers)


def typed_exchange(comm, send, send_sections, recv, recv_sections) -> None:
    """The blocking form of :func:`typed_exchange_begin`."""
    finish, _ = typed_exchange_begin(comm, send, send_sections, recv, recv_sections)
    finish()


def alltoallv_typed_begin(
    comm,
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    sendtypes: TypesArg,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
):
    """Split-phase datatype-carrying ``MPI_Alltoallv``; returns ``(finish, ready)``."""
    from repro.mpi.communicator import as_buffer

    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    if len(sendcounts) != comm.size or len(recvcounts) != comm.size:
        raise MpiArgumentError(
            f"typed counts/displacements must have one entry per rank ({comm.size})"
        )
    peers = list(range(comm.size))
    send_sections = build_sections(comm, send, peers, sendcounts, senddispls, sendtypes, "send")
    recv_sections = build_sections(comm, recv, peers, recvcounts, recvdispls, recvtypes, "recv")
    return typed_exchange_begin(comm, send, send_sections, recv, recv_sections)


def alltoallv_typed(
    comm,
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    sendtypes: TypesArg,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
) -> None:
    """Datatype-carrying ``MPI_Alltoallv`` (one section per rank).

    Counts are elements of the per-rank datatype; displacements are byte
    offsets of the first element in the user buffer (``MPI_Alltoallw``'s
    convention, which the halo exchange needs for its subarray types).
    """
    finish, _ = alltoallv_typed_begin(
        comm,
        sendbuf,
        sendcounts,
        senddispls,
        sendtypes,
        recvbuf,
        recvcounts,
        recvdispls,
        recvtypes,
    )
    finish()


def neighbor_alltoallv_typed_begin(
    comm,
    neighbors: Sequence[int],
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    sendtypes: TypesArg,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
):
    """Split-phase datatype-carrying neighbour collective; returns ``(finish, ready)``."""
    from repro.mpi.communicator import as_buffer

    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    if len(neighbors) != len(sendcounts) or len(neighbors) != len(recvcounts):
        raise MpiArgumentError("neighbour argument lists must have equal lengths")
    send_sections = build_sections(
        comm, send, neighbors, sendcounts, senddispls, sendtypes, "send"
    )
    recv_sections = build_sections(
        comm, recv, neighbors, recvcounts, recvdispls, recvtypes, "recv"
    )
    return typed_exchange_begin(comm, send, send_sections, recv, recv_sections)


def neighbor_alltoallv_typed(
    comm,
    neighbors: Sequence[int],
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    sendtypes: TypesArg,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
) -> None:
    """Datatype-carrying ``MPI_Neighbor_alltoallv`` over an explicit list.

    Unlike the byte variant, duplicate neighbours are allowed: several
    sections addressed to the same peer travel concatenated in list order, so
    callers with multiple regions per peer (small periodic halo grids) must
    order the two sides of each pair consistently — the halo application
    orders send sections by direction and receive sections by negated
    direction, as its packed layout already does.
    """
    finish, _ = neighbor_alltoallv_typed_begin(
        comm,
        neighbors,
        sendbuf,
        sendcounts,
        senddispls,
        sendtypes,
        recvbuf,
        recvcounts,
        recvdispls,
        recvtypes,
    )
    finish()


# --------------------------------------------------------------------------- #
# Datatype-carrying all-gather-v
# --------------------------------------------------------------------------- #

def allgatherv_typed_begin(
    comm,
    sendbuf,
    sendcount: int,
    sendtype: Datatype,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
):
    """Start the system-MPI engine of the datatype-carrying all-gather-v.

    This rank's ``sendcount`` elements of ``sendtype`` are packed **once**
    with the per-block baseline engine, the packed bytes are posted to every
    peer (the root-less fan-out), and the self-contribution is unpacked
    directly.  Returns ``(finish, ready)`` with the usual split-phase
    contract; ``finish`` unpacks every incoming contribution through its
    receive section's datatype and charges the analytic wire cost once —
    comparable message-for-message with TEMPI's plan-compiled path.
    """
    from repro.mpi.communicator import as_buffer

    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    if len(recvcounts) != comm.size or len(recvdispls) != comm.size:
        raise MpiArgumentError(
            f"typed recv counts/displacements must have one entry per rank ({comm.size})"
        )
    peers = list(range(comm.size))
    recv_sections = build_sections(comm, recv, peers, recvcounts, recvdispls, recvtypes, "recv")
    send_section = TypedSection(comm.rank, int(sendcount), 0, sendtype)
    send_section.check(comm, send, "send")
    nbytes = send_section.packed_bytes
    my_recv = recv_sections[comm.rank]
    if my_recv.packed_bytes != nbytes:
        raise MpiArgumentError("this rank's contribution disagrees with its recv section")
    tag = _next_collective_tag(comm)
    now = comm.clock.now

    if nbytes:
        staging = HostBuffer(nbytes, MemoryKind.HOST_PINNED)
        comm.baseline.pack(send, sendtype, send_section.count, staging)
        for peer in range(comm.size):
            if peer != comm.rank:
                _post_raw(comm, peer, tag, staging.data, comm.clock.now)
        comm.baseline.unpack(
            staging, 0, recv, my_recv.datatype, my_recv.count, out_offset=my_recv.displ
        )

    def finish() -> None:
        latest = now
        for section in recv_sections:
            if section.peer == comm.rank or section.count == 0:
                continue
            envelope = _receive_raw(comm, section.peer, tag)
            if envelope.nbytes != section.packed_bytes:
                raise MpiArgumentError(
                    f"rank {comm.rank} expected {section.packed_bytes} packed bytes from "
                    f"{section.peer}, got {envelope.nbytes}"
                )
            staging = HostBuffer(envelope.nbytes, MemoryKind.HOST_PINNED, _array=envelope.payload)
            comm.baseline.unpack(
                staging, 0, recv, section.datatype, section.count, out_offset=section.displ
            )
            latest = max(latest, envelope.available_at)

        comm.clock.advance_to(latest)
        per_pair = [max(nbytes, section.packed_bytes) for section in recv_sections]
        device = send.is_device or recv.is_device
        comm.clock.advance(
            comm.network.alltoallv_time(per_pair, comm.topology, comm.rank, device_buffers=device)
        )

    wire_peers = [s.peer for s in recv_sections if s.peer != comm.rank and s.count]
    return finish, _arrival_probe(comm, tag, wire_peers)


def allgatherv_typed(
    comm,
    sendbuf,
    sendcount: int,
    sendtype: Datatype,
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
    recvtypes: TypesArg,
) -> None:
    """Datatype-carrying ``MPI_Allgatherv`` (one receive section per rank).

    Counts are elements of the per-rank datatypes; displacements are byte
    offsets of the first element in the receive buffer, as in the typed
    all-to-all-v.  Every rank's ``sendcount * sendtype.size`` must equal the
    packed size of the section its peers expect from it.
    """
    finish, _ = allgatherv_typed_begin(
        comm, sendbuf, sendcount, sendtype, recvbuf, recvcounts, recvdispls, recvtypes
    )
    finish()
