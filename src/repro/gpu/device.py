"""Simulated GPU device description.

TEMPI queries a handful of device properties when sizing its pack kernels:
the maximum number of threads per block (1024 on V100, used to fill the
X/Y/Z block dimensions, Sec. 3.3) and whether a pointer is device resident
(checked on every send, Sec. 6.3).  :class:`DeviceProperties` carries those
numbers; :class:`Device` owns the memory accounting for one GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.errors import CudaInvalidValue, CudaOutOfMemory


@dataclass(frozen=True)
class DeviceProperties:
    """Static properties of a simulated GPU (defaults: Tesla V100-SXM2-16GB)."""

    name: str = "Tesla V100-SXM2-16GB (simulated)"
    total_memory: int = 16 * 1024**3
    max_threads_per_block: int = 1024
    max_block_dim: tuple[int, int, int] = (1024, 1024, 64)
    max_grid_dim: tuple[int, int, int] = (2**31 - 1, 65535, 65535)
    warp_size: int = 32
    multiprocessors: int = 80
    clock_rate_khz: int = 1530000

    def __post_init__(self) -> None:
        if self.total_memory <= 0:
            raise CudaInvalidValue("total_memory must be positive")
        if self.max_threads_per_block <= 0:
            raise CudaInvalidValue("max_threads_per_block must be positive")


@dataclass
class Device:
    """One simulated GPU: an ordinal, static properties and memory accounting."""

    ordinal: int = 0
    properties: DeviceProperties = field(default_factory=DeviceProperties)
    _allocated: int = field(default=0, repr=False)
    _peak: int = field(default=0, repr=False)

    def allocate(self, nbytes: int) -> None:
        """Account for a device allocation; raises :class:`CudaOutOfMemory` on overflow."""
        if nbytes < 0:
            raise CudaInvalidValue(f"allocation size must be non-negative, got {nbytes}")
        if self._allocated + nbytes > self.properties.total_memory:
            raise CudaOutOfMemory(
                f"device {self.ordinal}: allocating {nbytes} bytes exceeds "
                f"{self.properties.total_memory} byte capacity "
                f"({self._allocated} in use)"
            )
        self._allocated += nbytes
        self._peak = max(self._peak, self._allocated)

    def release(self, nbytes: int) -> None:
        """Account for a device free."""
        if nbytes < 0:
            raise CudaInvalidValue(f"free size must be non-negative, got {nbytes}")
        self._allocated = max(0, self._allocated - nbytes)

    @property
    def memory_in_use(self) -> int:
        """Bytes currently allocated on the device."""
        return self._allocated

    @property
    def peak_memory(self) -> int:
        """High-water mark of device allocations (metadata-footprint claims, Sec. 2)."""
        return self._peak

    @property
    def memory_free(self) -> int:
        """Bytes still available."""
        return self.properties.total_memory - self._allocated
