"""Smoke tests: every example script runs to completion and prints its tables.

The examples are part of the public deliverable, so they are executed here
exactly as a user would run them (as ``__main__`` modules); each one already
asserts its own correctness conditions internally (byte-identical packs,
verified ghost regions, selection accuracy).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "datatype_zoo.py",
    "system_measurement.py",
    "ping_pong_methods.py",
    "stencil_halo_exchange.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    # system_measurement.py writes its JSON next to itself; run it from a
    # scratch directory copy so the repository stays clean.
    if script == "system_measurement.py":
        scratch = tmp_path / script
        scratch.write_text(path.read_text())
        path = scratch
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output.splitlines()) > 3


def test_examples_directory_has_quickstart_plus_domain_examples():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
