"""Tests for the CudaRuntime facade."""

import numpy as np
import pytest

from repro.gpu.cost_model import FREE_GPU, SUMMIT_GPU
from repro.gpu.errors import CudaInvalidValue, CudaMemcpyError, CudaOutOfMemory
from repro.gpu.memory import MemoryKind
from repro.gpu.runtime import CudaRuntime, MemcpyKind


class TestAllocation:
    def test_malloc_charges_time_and_memory(self, summit_runtime):
        before = summit_runtime.clock.now
        buf = summit_runtime.malloc(4096)
        assert buf.is_device
        assert summit_runtime.clock.now - before == pytest.approx(SUMMIT_GPU.alloc_s)
        assert summit_runtime.device.memory_in_use == 4096

    def test_free_releases_memory(self, summit_runtime):
        buf = summit_runtime.malloc(4096)
        summit_runtime.free(buf)
        assert summit_runtime.device.memory_in_use == 0
        assert buf.freed

    def test_double_free_is_noop(self, summit_runtime):
        buf = summit_runtime.malloc(16)
        summit_runtime.free(buf)
        summit_runtime.free(buf)
        assert summit_runtime.device.memory_in_use == 0

    def test_cannot_free_view(self, summit_runtime):
        buf = summit_runtime.malloc(64)
        with pytest.raises(CudaInvalidValue):
            summit_runtime.free(buf.view(8))

    def test_out_of_memory_propagates(self):
        runtime = CudaRuntime(cost_model=FREE_GPU)
        with pytest.raises(CudaOutOfMemory):
            runtime.malloc(runtime.device.properties.total_memory + 1)

    def test_pinned_host_alloc_costs_more_than_pageable(self, summit_runtime):
        start = summit_runtime.clock.now
        summit_runtime.host_alloc(64, MemoryKind.HOST_PAGEABLE)
        pageable = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        summit_runtime.host_alloc(64, MemoryKind.HOST_PINNED)
        pinned = summit_runtime.clock.now - start
        assert pinned > pageable

    def test_host_alloc_rejects_device_kind(self, summit_runtime):
        with pytest.raises(CudaInvalidValue):
            summit_runtime.host_alloc(64, MemoryKind.DEVICE)


class TestMemcpy:
    def test_functional_copy(self, free_runtime):
        src = free_runtime.malloc(64)
        dst = free_runtime.malloc(64)
        src.data[:] = np.arange(64, dtype=np.uint8)
        free_runtime.memcpy(dst, src)
        assert np.array_equal(dst.data, src.data)

    def test_offsets(self, free_runtime):
        src = free_runtime.host_alloc(32, MemoryKind.HOST_PAGEABLE)
        dst = free_runtime.malloc(32)
        src.data[:] = 3
        free_runtime.memcpy(dst, src, 8, dst_offset=16, src_offset=0)
        assert (dst.data[16:24] == 3).all()
        assert not dst.data[:16].any()

    def test_direction_inference_affects_cost(self, summit_runtime):
        device = summit_runtime.malloc(1 << 20)
        host = summit_runtime.host_alloc(1 << 20)
        start = summit_runtime.clock.now
        summit_runtime.memcpy(device, device)
        d2d = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        summit_runtime.memcpy(host, device)
        d2h = summit_runtime.clock.now - start
        assert d2h > d2d

    def test_explicit_kind_overrides_inference(self, summit_runtime):
        a = summit_runtime.malloc(1 << 20)
        b = summit_runtime.malloc(1 << 20)
        start = summit_runtime.clock.now
        summit_runtime.memcpy(a, b, kind=MemcpyKind.DEVICE_TO_HOST)
        forced = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        summit_runtime.memcpy(a, b)
        inferred = summit_runtime.clock.now - start
        assert forced > inferred

    def test_async_copy_does_not_block_host(self, summit_runtime):
        a = summit_runtime.malloc(1 << 20)
        b = summit_runtime.malloc(1 << 20)
        before = summit_runtime.clock.now
        summit_runtime.memcpy_async(a, b)
        assert summit_runtime.clock.now == before
        assert summit_runtime.default_stream.busy

    def test_too_large_copy_rejected(self, free_runtime):
        a = free_runtime.malloc(16)
        b = free_runtime.malloc(8)
        with pytest.raises(CudaMemcpyError):
            free_runtime.memcpy(a, b, 12)

    def test_memcpy_counter(self, free_runtime):
        a = free_runtime.malloc(8)
        free_runtime.memcpy(a, a, 8)
        free_runtime.memcpy(a, a, 8)
        assert free_runtime.memcpy_calls == 2

    def test_memset(self, free_runtime):
        buf = free_runtime.malloc(32)
        free_runtime.memset(buf, 9)
        assert (buf.data == 9).all()


class TestKernelLaunches:
    def test_pack_moves_bytes(self, free_runtime):
        src = free_runtime.malloc(256)
        dst = free_runtime.malloc(32)
        src.data[:] = np.arange(256, dtype=np.uint8) % 251
        written = free_runtime.launch_pack(src, dst, 0, [8, 4], [1, 64])
        free_runtime.stream_synchronize()
        assert written == 32
        expected = np.concatenate([src.data[i * 64 : i * 64 + 8] for i in range(4)])
        assert np.array_equal(dst.data, expected)

    def test_unpack_moves_bytes(self, free_runtime):
        packed = free_runtime.malloc(32)
        dst = free_runtime.malloc(256)
        packed.data[:] = 7
        free_runtime.launch_unpack(packed, dst, 0, [8, 4], [1, 64])
        free_runtime.stream_synchronize()
        assert (dst.data[0:8] == 7).all()
        assert (dst.data[192:200] == 7).all()
        assert not dst.data[8:64].any()

    def test_kernel_cost_depends_on_block_length(self):
        slow = CudaRuntime(cost_model=SUMMIT_GPU)
        fast = CudaRuntime(cost_model=SUMMIT_GPU)
        size = 1 << 20
        src_slow = slow.malloc(size * 2)
        dst_slow = slow.malloc(size)
        src_fast = fast.malloc(size * 2)
        dst_fast = fast.malloc(size)
        start = slow.clock.now
        slow.launch_pack(src_slow, dst_slow, 0, [1, size], [1, 2])
        slow.stream_synchronize()
        slow_elapsed = slow.clock.now - start
        start = fast.clock.now
        fast.launch_pack(src_fast, dst_fast, 0, [256, size // 256], [1, 512])
        fast.stream_synchronize()
        fast_elapsed = fast.clock.now - start
        assert slow_elapsed > fast_elapsed

    def test_pack_to_host_charges_zero_copy_bandwidth(self, summit_runtime):
        size = 1 << 20
        src = summit_runtime.malloc(2 * size)
        device_dst = summit_runtime.malloc(size)
        host_dst = summit_runtime.host_alloc(size, MemoryKind.HOST_MAPPED)
        start = summit_runtime.clock.now
        summit_runtime.launch_pack(src, device_dst, 0, [256, size // 256], [1, 512])
        summit_runtime.stream_synchronize()
        device_time = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        summit_runtime.launch_pack(src, host_dst, 0, [256, size // 256], [1, 512])
        summit_runtime.stream_synchronize()
        host_time = summit_runtime.clock.now - start
        assert host_time > device_time

    def test_kernel_counter(self, free_runtime):
        src = free_runtime.malloc(128)
        dst = free_runtime.malloc(16)
        free_runtime.launch_pack(src, dst, 0, [8, 2], [1, 64])
        assert free_runtime.kernel_launches == 1


class TestStreamsAndSync:
    def test_stream_create_destroy(self, free_runtime):
        stream = free_runtime.stream_create("pack")
        assert stream.name == "pack"
        free_runtime.stream_destroy(stream)

    def test_device_synchronize_waits_for_all_streams(self, summit_runtime):
        first = summit_runtime.stream_create()
        second = summit_runtime.stream_create()
        first.enqueue(5e-6)
        second.enqueue (9e-6)
        summit_runtime.device_synchronize()
        assert summit_runtime.clock.now >= 9e-6

    def test_elapsed_helper(self, summit_runtime):
        start = summit_runtime.clock.now
        summit_runtime.clock.advance(5e-6)
        assert summit_runtime.elapsed(start) == pytest.approx(5e-6)
