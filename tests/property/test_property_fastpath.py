"""Property-based test: the fast-path caches can never move a priced result.

The plan cache replays the recorded selection transcript through the live
selector and the selection memo preserves the cached-query charge schedule,
so for *any* typed exchange, any round count and any cache configuration —
everything on, plan cache off, selection memo off, everything off — the
bytes delivered to every receive buffer AND every rank's virtual completion
time must be exactly identical.  A divergence in either means a cache
leaked into the priced simulation, the one thing the fast path must never
do.

Driven single-threaded (every rank posts its ``Ialltoallv``, then every
rank waits, in rank order) so the shared-NIC interleaving is deterministic
and clock equality is meaningful.  The incast case aims every rank at one
hot receiver under ``selection="contended"`` + ``nic="duplex"``, the
configuration where memoised decisions fold live backlog in — the bounded
contended memo must key on that backlog, not hide it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: Every cache configuration the knobs can express.
CONFIG_GRID = (
    {"plan_cache": True, "selection_memo": True},
    {"plan_cache": False, "selection_memo": True},
    {"plan_cache": True, "selection_memo": False},
    {"plan_cache": False, "selection_memo": False},
)


@st.composite
def exchange_cases(draw):
    """A world size, vector shape, consistent count matrix and round count."""
    nranks = draw(st.integers(min_value=2, max_value=4))
    nblocks = draw(st.integers(min_value=1, max_value=5))
    block = draw(st.integers(min_value=1, max_value=8))
    gap = draw(st.integers(min_value=0, max_value=8))  # gap 0: contiguous fallback
    counts = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=2), min_size=nranks, max_size=nranks),
            min_size=nranks,
            max_size=nranks,
        )
    )
    rounds = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, nblocks, block, block + gap, counts, rounds, seed


def _drive(config, summit_model, nranks, nblocks, block, pitch, counts, rounds, seed):
    """Run ``rounds`` identical-shape exchanges inline; bytes + clocks per rank."""
    world = World(nranks, ranks_per_node=2)
    setup = []
    for ctx in world.contexts:
        comm = interpose(ctx, config, model=summit_model)
        datatype = comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))
        extent = datatype.extent
        sendcounts = counts[ctx.rank]
        recvcounts = [counts[peer][ctx.rank] for peer in range(nranks)]
        senddispls = list(np.cumsum([0] + [c * extent for c in sendcounts[:-1]]).astype(int))
        recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
        send = ctx.gpu.malloc(max(1, sum(sendcounts) * extent))
        recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
        setup.append((ctx, comm, datatype, sendcounts, senddispls,
                      recvcounts, recvdispls, send, recv))
    for round_index in range(rounds):
        # Fresh payload every round: a cached plan must deliver live bytes.
        for entry in setup:
            ctx, send = entry[0], entry[7]
            rng = np.random.default_rng(seed + 7919 * round_index + ctx.rank)
            send.data[:] = rng.integers(0, 255, send.nbytes, dtype=np.uint8)
        requests = []
        for (ctx, comm, datatype, sendcounts, senddispls,
             recvcounts, recvdispls, send, recv) in setup:
            requests.append(comm.Ialltoallv(
                send, sendcounts, senddispls,
                recv, recvcounts, recvdispls,
                sendtypes=datatype, recvtypes=datatype,
            ))
        for request in requests:
            request.Wait()
    plan_cache_hits = sum(entry[1].tempi.stats.plan_cache_hits for entry in setup)
    return [(entry[8].data.copy(), entry[0].clock.now) for entry in setup], plan_cache_hits


def _assert_identical(reference, candidate, label):
    for rank, ((ref_bytes, ref_clock), (got_bytes, got_clock)) in enumerate(
        zip(reference, candidate)
    ):
        assert np.array_equal(ref_bytes, got_bytes), (
            f"rank {rank}: delivered bytes diverge with {label}"
        )
        assert ref_clock == got_clock, (
            f"rank {rank}: completion time diverges with {label} "
            f"({ref_clock!r} != {got_clock!r})"
        )


@settings(max_examples=15, deadline=None)
@given(exchange_cases())
def test_caches_never_move_bytes_or_clocks(summit_model, case):
    nranks, nblocks, block, pitch, counts, rounds, seed = case
    reference = None
    for overrides in CONFIG_GRID:
        config = TempiConfig(**overrides)
        outcome, plan_cache_hits = _drive(config, summit_model, nranks, nblocks,
                                          block, pitch, counts, rounds, seed)
        strided = nblocks > 1 and pitch > block  # else canonicalized contiguous
        cross_rank = any(
            count for rank, row in enumerate(counts)
            for peer, count in enumerate(row) if peer != rank
        )
        if overrides["plan_cache"] and strided and cross_rank:
            # The repeated-shape rounds must actually exercise the fast path
            # (contiguous vectors fall back and never reach the plan cache).
            assert plan_cache_hits > 0, "plan cache never hit on a repeated shape"
        if not overrides["plan_cache"]:
            assert plan_cache_hits == 0, "plan cache hit while disabled"
        if reference is None:
            reference = outcome
            continue
        _assert_identical(reference, outcome, f"TempiConfig(**{overrides})")


@settings(max_examples=10, deadline=None)
@given(
    nranks=st.integers(min_value=3, max_value=4),
    messages=st.integers(min_value=1, max_value=2),
    rounds=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_duplex_incast_caches_never_move_results(summit_model, nranks, messages, rounds, seed):
    """Everyone aims at rank 0 under contended selection + duplex NIC."""
    counts = [[messages if peer == 0 and rank != 0 else 0 for peer in range(nranks)]
              for rank in range(nranks)]
    reference = None
    for overrides in CONFIG_GRID:
        config = TempiConfig(selection="contended", nic="duplex", **overrides)
        outcome, _ = _drive(config, summit_model, nranks, 4, 8, 24, counts, rounds, seed)
        if reference is None:
            reference = outcome
            continue
        _assert_identical(reference, outcome, f"incast TempiConfig(**{overrides})")
