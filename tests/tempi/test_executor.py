"""Tests for the plan executor: overlap scheduling, stats, equivalence."""

import numpy as np
import pytest

from repro.mpi.world import World
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.executor import PlanExecutor
from repro.tempi.interposer import InterposerStats
from repro.tempi.packer import Packer
from repro.tempi.plan import PlanSection, compile_exchange, compile_recv, compile_send
from repro.tempi.strided_block import StridedBlock


def make_packer(block=16, count=32, pitch=64) -> Packer:
    shape = StridedBlock(start=0, counts=(block, count), strides=(1, pitch))
    return Packer(shape, object_extent=(count - 1) * pitch + block)


def _exchange_program(ctx, *, overlap, method=PackMethod.DEVICE, iterations=1):
    """One symmetric packed exchange over every rank; returns (bytes, seconds)."""
    packer = make_packer()
    cache = ResourceCache(ctx.gpu)
    executor = PlanExecutor(ctx.comm, cache, overlap=overlap)
    extent = packer.object_extent
    send = ctx.gpu.malloc(extent * ctx.size)
    recv = ctx.gpu.malloc(extent * ctx.size)
    for peer in range(ctx.size):
        send.data[peer * extent : (peer + 1) * extent] = (ctx.rank * 10 + peer) % 251
    sections = [PlanSection(peer, 1, peer * extent, packer) for peer in range(ctx.size)]
    start = ctx.clock.now
    for _ in range(iterations):
        plan = compile_exchange(
            ctx.comm.rank, send, sections, recv, sections, lambda p, n, peer=None: method
        )
        executor.execute(plan).Wait()
    return recv.data.copy(), ctx.clock.now - start


class TestSchedulesMoveTheSameBytes:
    @pytest.mark.parametrize("method", [PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.STAGED])
    def test_overlap_equals_serial_bytes(self, method):
        serial = World(4, ranks_per_node=2).run(
            lambda ctx: _exchange_program(ctx, overlap=False, method=method)[0]
        )
        overlapped = World(4, ranks_per_node=2).run(
            lambda ctx: _exchange_program(ctx, overlap=True, method=method)[0]
        )
        for a, b in zip(serial, overlapped):
            assert np.array_equal(a, b)

    def test_overlap_preserves_strided_content(self):
        results = World(4, ranks_per_node=2).run(
            lambda ctx: _exchange_program(ctx, overlap=True)[0]
        )
        packer = make_packer()
        extent = packer.object_extent
        for rank, received in enumerate(results):
            for peer in range(4):
                base = peer * extent
                for row in range(32):
                    begin = base + row * 64
                    assert (received[begin : begin + 16] == (peer * 10 + rank) % 251).all()


class TestOverlapIsFaster:
    def test_multi_peer_exchange(self):
        """Pack kernels overlap wire time: the pipeline beats pack-then-post."""
        serial = max(
            t for _, t in World(8, ranks_per_node=4).run(
                lambda ctx: _exchange_program(ctx, overlap=False, iterations=2)
            )
        )
        overlapped = max(
            t for _, t in World(8, ranks_per_node=4).run(
                lambda ctx: _exchange_program(ctx, overlap=True, iterations=2)
            )
        )
        assert overlapped < serial

    def test_single_peer_send_recv_ordering_unchanged(self):
        """For one message overlap cannot help: times stay comparable."""

        def program(ctx, overlap):
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            executor = PlanExecutor(ctx.comm, cache, overlap=overlap)
            user = ctx.gpu.malloc(packer.required_input(1))
            if ctx.rank == 0:
                plan = compile_send(packer, user, 1, 1, 0, PackMethod.DEVICE)
                start = ctx.clock.now
                executor.execute(plan).Wait()
                return ctx.clock.now - start
            plan = compile_recv(packer, user, 1, 0, 0, PackMethod.DEVICE)
            start = ctx.clock.now
            executor.execute(plan).Wait()
            return ctx.clock.now - start

        serial = World(2, ranks_per_node=1).run(program, False)
        overlapped = World(2, ranks_per_node=1).run(program, True)
        # overlap saves only the per-pack host synchronisation on the sender
        assert overlapped[0] <= serial[0]


class TestExecutorStats:
    def test_plan_and_overlap_counters(self):
        def program(ctx):
            stats = InterposerStats()
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            executor = PlanExecutor(ctx.comm, cache, stats, overlap=True)
            extent = packer.object_extent
            send = ctx.gpu.malloc(extent * ctx.size)
            recv = ctx.gpu.malloc(extent * ctx.size)
            sections = [PlanSection(p, 1, p * extent, packer) for p in range(ctx.size)]
            plan = compile_exchange(
                ctx.comm.rank, send, sections, recv, sections, lambda p, n, peer=None: PackMethod.DEVICE
            )
            executor.execute(plan).Wait()
            return stats

        for stats in World(4, ranks_per_node=2).run(program):
            assert stats.plans_built == 1
            # 3 pack stages overlapped with the wire + 3 unpack stages
            assert stats.stages_overlapped == 6
            assert stats.deferred_unpacks == 0  # blocking plan

    def test_deferred_unpacks_counted_for_nonblocking_plans(self):
        def program(ctx):
            stats = InterposerStats()
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            executor = PlanExecutor(ctx.comm, cache, stats, overlap=True)
            extent = packer.object_extent
            send = ctx.gpu.malloc(extent * ctx.size)
            recv = ctx.gpu.malloc(extent * ctx.size)
            sections = [PlanSection(p, 1, p * extent, packer) for p in range(ctx.size)]
            plan = compile_exchange(
                ctx.comm.rank,
                send,
                sections,
                recv,
                sections,
                lambda p, n, peer=None: PackMethod.DEVICE,
                nonblocking=True,
            )
            request = executor.execute(plan)
            assert stats.deferred_unpacks == 0  # nothing deferred has run yet
            request.Wait()
            return stats

        for stats in World(2, ranks_per_node=1).run(program):
            assert stats.deferred_unpacks == 1  # one wire peer at 2 ranks

    def test_serial_mode_counts_no_overlapped_stages(self):
        def program(ctx):
            stats = InterposerStats()
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            executor = PlanExecutor(ctx.comm, cache, stats, overlap=False)
            user = ctx.gpu.malloc(packer.required_input(1))
            if ctx.rank == 0:
                executor.execute(compile_send(packer, user, 1, 1, 0, PackMethod.DEVICE)).Wait()
            else:
                executor.execute(compile_recv(packer, user, 1, 0, 0, PackMethod.DEVICE)).Wait()
            return stats

        for stats in World(2, ranks_per_node=1).run(program):
            assert stats.plans_built == 1
            assert stats.stages_overlapped == 0


class TestPersistentStagingAcrossIterations:
    def test_overlap_engine_reuses_peer_buffers(self):
        # reuse is covered communicator-level in test_methods; here assert the
        # overlapped engine hits the same persistent keys on iteration 2+
        def program(ctx):
            packer = make_packer()
            cache = ResourceCache(ctx.gpu)
            executor = PlanExecutor(ctx.comm, cache, overlap=True)
            extent = packer.object_extent
            send = ctx.gpu.malloc(extent * ctx.size)
            recv = ctx.gpu.malloc(extent * ctx.size)
            sections = [PlanSection(p, 1, p * extent, packer) for p in range(ctx.size)]
            for _ in range(3):
                plan = compile_exchange(
                    ctx.comm.rank, send, sections, recv, sections,
                    lambda p, n, peer=None: PackMethod.ONESHOT,
                )
                executor.execute(plan).Wait()
            return cache.stats

        for stats in World(2, ranks_per_node=1).run(program):
            assert stats.persistent_misses == 4
            assert stats.persistent_hits == 2 * 4
