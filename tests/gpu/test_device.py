"""Tests for the simulated device."""

import pytest

from repro.gpu.device import Device, DeviceProperties
from repro.gpu.errors import CudaInvalidValue, CudaOutOfMemory


class TestDeviceProperties:
    def test_defaults_look_like_a_v100(self):
        props = DeviceProperties()
        assert props.max_threads_per_block == 1024
        assert props.total_memory == 16 * 1024**3
        assert props.warp_size == 32

    def test_invalid_memory_rejected(self):
        with pytest.raises(CudaInvalidValue):
            DeviceProperties(total_memory=0)

    def test_invalid_threads_rejected(self):
        with pytest.raises(CudaInvalidValue):
            DeviceProperties(max_threads_per_block=0)


class TestDeviceAccounting:
    def test_allocation_tracks_usage(self):
        device = Device(0)
        device.allocate(1024)
        assert device.memory_in_use == 1024
        assert device.memory_free == device.properties.total_memory - 1024

    def test_release_reduces_usage(self):
        device = Device(0)
        device.allocate(2048)
        device.release(1024)
        assert device.memory_in_use == 1024

    def test_release_never_goes_negative(self):
        device = Device(0)
        device.release(4096)
        assert device.memory_in_use == 0

    def test_peak_memory_tracks_high_water_mark(self):
        device = Device(0)
        device.allocate(1000)
        device.allocate(500)
        device.release(1200)
        device.allocate(100)
        assert device.peak_memory == 1500

    def test_out_of_memory(self):
        device = Device(0, DeviceProperties(total_memory=1024))
        device.allocate(1000)
        with pytest.raises(CudaOutOfMemory):
            device.allocate(100)

    def test_negative_allocation_rejected(self):
        with pytest.raises(CudaInvalidValue):
            Device(0).allocate(-1)

    def test_negative_release_rejected(self):
        with pytest.raises(CudaInvalidValue):
            Device(0).release(-1)
