"""Trace replay: determinism and malformed-trace diagnostics.

The replay front-end's contract has two halves: the same trace under the
same config must reproduce **bit-identical** priced clocks, interposer
counters and receive digests on every run; and a malformed trace must be
rejected with a :class:`~repro.apps.replay.TraceError` that names the
offending record (``ops[i]``) rather than failing mid-replay.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.moe import MoESpec, moe_trace
from repro.apps.pipeline import PipelineSpec, pipeline_trace
from repro.apps.replay import TraceError, load_trace, replay_trace
from repro.tempi.config import TempiConfig


def _moe_trace(moe_seed):
    return moe_trace(
        MoESpec(tokens_per_rank=8, token_bytes=4096, skew=4.0, seed=moe_seed), 4
    )


def _pipeline_trace():
    return pipeline_trace(PipelineSpec(microbatches=3, activation_bytes=8192), 4)


def _mixed_trace(moe_seed):
    """All three record kinds in one schedule."""
    trace = _moe_trace(moe_seed)
    trace["ops"].append({"op": "allreduce", "count": 512, "dtype": "float32", "reduce": "sum"})
    trace["ops"].extend(_pipeline_trace()["ops"])
    return trace


class TestDeterminism:
    def test_moe_trace_replays_bit_identically(self, summit_model, moe_seed):
        trace = _moe_trace(moe_seed)
        first = replay_trace(trace, model=summit_model)
        second = replay_trace(trace, model=summit_model)
        assert first.clocks == second.clocks
        assert first.stats == second.stats
        assert first.digests == second.digests

    def test_pipeline_trace_replays_bit_identically(self, summit_model):
        trace = _pipeline_trace()
        first = replay_trace(trace, model=summit_model)
        second = replay_trace(trace, model=summit_model)
        assert first.clocks == second.clocks
        assert first.stats == second.stats
        assert first.digests == second.digests

    def test_mixed_trace_replays_bit_identically(self, summit_model, moe_seed):
        trace = _mixed_trace(moe_seed)
        first = replay_trace(trace, model=summit_model)
        second = replay_trace(trace, model=summit_model)
        assert first.ops == len(trace["ops"])
        assert first.clocks == second.clocks
        assert first.stats == second.stats
        assert first.digests == second.digests

    def test_round_trip_through_json_file(self, summit_model, moe_seed, tmp_path):
        trace = _moe_trace(moe_seed)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        from_dict = replay_trace(trace, model=summit_model)
        from_file = replay_trace(path, model=summit_model)
        assert from_file.clocks == from_dict.clocks
        assert from_file.digests == from_dict.digests

    def test_config_moves_clocks_but_stays_deterministic(self, summit_model, moe_seed):
        """A different engine config is a different (still deterministic) run."""
        trace = _moe_trace(moe_seed)
        duplex = replay_trace(trace, model=summit_model)
        inject = replay_trace(trace, model=summit_model, config=TempiConfig(nic="inject_only"))
        inject_again = replay_trace(
            trace, model=summit_model, config=TempiConfig(nic="inject_only")
        )
        assert inject.clocks == inject_again.clocks
        assert inject.digests == duplex.digests  # bytes never depend on the NIC model

    def test_replay_runs_on_accelerated_path(self, summit_model, moe_seed):
        stats = replay_trace(_mixed_trace(moe_seed), model=summit_model).stats
        assert all(snapshot["collective_fallbacks"] == 0 for snapshot in stats)
        assert all(snapshot["plans_built"] > 0 for snapshot in stats)


class TestMalformedTraces:
    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TraceError, match="not valid JSON"):
            load_trace(path)

    def test_non_object_document(self):
        with pytest.raises(TraceError, match="trace: document must be an object"):
            load_trace([1, 2, 3])

    def test_unsupported_version(self):
        with pytest.raises(TraceError, match="unsupported version 2"):
            load_trace({"version": 2, "nranks": 2, "ops": []})

    def test_bad_nranks(self):
        with pytest.raises(TraceError, match="nranks must be a positive integer"):
            load_trace({"version": 1, "nranks": 0, "ops": []})

    def test_unknown_op_names_record(self):
        trace = {"version": 1, "nranks": 2, "ops": [{"op": "allgather"}]}
        with pytest.raises(TraceError, match=r"ops\[0\]: unknown op 'allgather'"):
            load_trace(trace)

    def test_bad_counts_shape_names_record(self, moe_seed):
        trace = _moe_trace(moe_seed)
        trace["ops"][0]["counts"] = [[1, 2], [3, 4]]  # 2x2 matrix for 4 ranks
        with pytest.raises(TraceError, match=r"ops\[0\]: counts must be a 4x4 matrix"):
            load_trace(trace)

    def test_negative_counts_names_record(self, moe_seed):
        trace = _moe_trace(moe_seed)
        trace["ops"][0]["counts"][1][2] = -1
        with pytest.raises(TraceError, match=r"ops\[0\]: counts entries must be non-negative"):
            load_trace(trace)

    def test_odd_item_bytes_names_record(self, moe_seed):
        trace = _moe_trace(moe_seed)
        trace["ops"][0]["item_bytes"] = 4097
        with pytest.raises(TraceError, match=r"ops\[0\]: item_bytes must be a positive even"):
            load_trace(trace)

    def test_bad_allreduce_dtype_names_record(self):
        trace = {
            "version": 1, "nranks": 2,
            "ops": [{"op": "allreduce", "count": 4, "dtype": "complex64"}],
        }
        with pytest.raises(TraceError, match=r"ops\[0\]: dtype must be one of"):
            load_trace(trace)

    def test_bad_reduce_op_names_record(self):
        trace = {
            "version": 1, "nranks": 2,
            "ops": [{"op": "allreduce", "count": 4, "dtype": "float32", "reduce": "xor"}],
        }
        with pytest.raises(TraceError, match=r"ops\[0\]: reduce must be sum/prod/min/max"):
            load_trace(trace)

    def test_out_of_range_edge_names_record_and_edge(self):
        trace = {
            "version": 1, "nranks": 2,
            "ops": [
                {"op": "p2p", "edges": [[0, 1, 1], [1, 5, 1]],
                 "item_bytes": 64, "item_pad": 2},
            ],
        }
        with pytest.raises(TraceError, match=r"ops\[0\]: edges\[1\] endpoints \(1, 5\)"):
            load_trace(trace)

    def test_self_edge_rejected(self):
        trace = {
            "version": 1, "nranks": 2,
            "ops": [{"op": "p2p", "edges": [[1, 1, 1]], "item_bytes": 64, "item_pad": 2}],
        }
        with pytest.raises(TraceError, match=r"ops\[0\]: edges\[0\] endpoints \(1, 1\)"):
            load_trace(trace)

    def test_second_record_index_reported(self, moe_seed):
        trace = _moe_trace(moe_seed)
        trace["ops"].append({"op": "allreduce", "count": -3, "dtype": "float32"})
        with pytest.raises(TraceError, match=r"ops\[1\]: count must be a positive integer"):
            load_trace(trace)
