"""The resource cache (Sec. 5).

CUDA resources (streams, pinned and device intermediate buffers) and
performance-model queries are far too slow to acquire on every send —
microseconds to milliseconds versus the tens-of-nanoseconds budget of an
interposed call.  TEMPI therefore caches them, keyed by what iterative
applications repeat: the same datatypes, the same buffer sizes, the same
model queries.  This module provides that cache for the reproduction; the
ablation benchmark ``bench_ablation_cache.py`` measures what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.gpu.memory import Buffer, MemoryKind, MemoryPool
from repro.gpu.runtime import CudaRuntime
from repro.gpu.stream import Stream


@dataclass
class CacheStats:
    """Hit/miss counters, split by resource class."""

    buffer_hits: int = 0
    buffer_misses: int = 0
    stream_hits: int = 0
    stream_misses: int = 0
    query_hits: int = 0
    query_misses: int = 0
    #: Keyed (per-peer collective staging) buffers, reused across iterations.
    persistent_hits: int = 0
    persistent_misses: int = 0

    def hit_rate(self) -> float:
        hits = self.buffer_hits + self.stream_hits + self.query_hits + self.persistent_hits
        total = (
            hits
            + self.buffer_misses
            + self.stream_misses
            + self.query_misses
            + self.persistent_misses
        )
        return hits / total if total else 0.0


class ResourceCache:
    """Caches intermediate buffers, streams and pure model queries."""

    def __init__(self, runtime: CudaRuntime, *, enabled: bool = True) -> None:
        self.runtime = runtime
        self.enabled = enabled
        self.stats = CacheStats()
        self._pool = MemoryPool()
        self._streams: list[Stream] = []
        self._queries: dict[Hashable, object] = {}
        self._query_keys: set[Hashable] = set()
        self._persistent: dict[Hashable, Buffer] = {}

    # ---------------------------------------------------------------- buffers
    def get_buffer(self, nbytes: int, kind: MemoryKind) -> Buffer:
        """An intermediate buffer of at least ``nbytes`` of ``kind``.

        Cache hits cost nothing on the virtual clock; misses pay the full
        ``cudaMalloc`` / ``cudaHostAlloc`` latency.
        """
        if self.enabled:
            cached = self._pool.acquire(nbytes, kind)
            if cached is not None:
                self.stats.buffer_hits += 1
                return cached
        self.stats.buffer_misses += 1
        if kind is MemoryKind.DEVICE:
            return self.runtime.malloc(max(1, nbytes))
        return self.runtime.host_alloc(max(1, nbytes), kind)

    def put_buffer(self, buffer: Buffer) -> None:
        """Return an intermediate buffer for reuse (freed when caching is off)."""
        if self.enabled:
            self._pool.release(buffer)
        elif buffer.is_device:
            self.runtime.free(buffer)

    def get_persistent(self, key: Hashable, nbytes: int, kind: MemoryKind) -> Buffer:
        """A keyed staging buffer held by the cache itself (not checked out).

        Collectives stage one segment per peer, every iteration, with stable
        sizes — exactly the reuse pattern that makes per-peer keys win over
        the size-bucketed pool: the buffer stays bound to its key, so an
        iterative application's second exchange performs zero acquisitions.
        A buffer too small (or of the wrong kind) for its key is replaced
        through the pool, which charges the allocation latency.
        """
        cached = self._persistent.get(key) if self.enabled else None
        if cached is not None and cached.nbytes >= nbytes and cached.kind is kind:
            self.stats.persistent_hits += 1
            return cached
        self.stats.persistent_misses += 1
        if cached is not None:
            self._pool.release(cached)
        fresh = self.get_buffer(nbytes, kind)
        if self.enabled:
            self._persistent[key] = fresh
        return fresh

    # ---------------------------------------------------------------- streams
    def get_stream(self) -> Stream:
        """A stream for pack/unpack work."""
        if self.enabled and self._streams:
            self.stats.stream_hits += 1
            return self._streams.pop()
        self.stats.stream_misses += 1
        return self.runtime.stream_create()

    def put_stream(self, stream: Stream) -> None:
        """Return a stream for reuse."""
        if self.enabled:
            self._streams.append(stream)
        else:
            self.runtime.stream_destroy(stream)

    # ---------------------------------------------------------------- queries
    def memoize(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Cache a pure computation (performance-model interpolation)."""
        if self.enabled and key in self._queries:
            self.stats.query_hits += 1
            return self._queries[key]
        self.stats.query_misses += 1
        value = compute()
        if self.enabled:
            self._queries[key] = value
        return value

    def note_query(self, key: Hashable) -> bool:
        """Record that ``key`` was queried; True if it was seen before.

        The selection-memo-off path uses this to keep the *charge schedule*
        of :meth:`memoize` (first query cold, repeats at the cached-query
        cost) while discarding the memoised value itself, so ablations price
        identically to the memoised path.
        """
        if self.enabled and key in self._query_keys:
            self.stats.query_hits += 1
            return True
        self.stats.query_misses += 1
        if self.enabled:
            self._query_keys.add(key)
        return False

    def clear(self) -> None:
        """Drop everything (between benchmark configurations)."""
        self._pool.clear()
        self._streams.clear()
        self._queries.clear()
        self._query_keys.clear()
        self._persistent.clear()

    def __len__(self) -> int:
        return len(self._pool) + len(self._streams) + len(self._queries) + len(self._persistent)
