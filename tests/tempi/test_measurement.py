"""Tests for the system-measurement sweep."""

import numpy as np
import pytest

from repro.machine.spec import SUMMIT
from repro.tempi.measurement import (
    DEFAULT_BLOCKS,
    DEFAULT_SIZES,
    SystemMeasurement,
    measure_system,
)


@pytest.fixture(scope="module")
def small_measurement():
    return measure_system(
        SUMMIT, sizes=[64, 1024, 65536, 1 << 20], block_lengths=[1, 8, 64, 512]
    )


class TestSweepShape:
    def test_curve_lengths_match_sizes(self, small_measurement):
        m = small_measurement
        assert len(m.t_cpu_cpu) == len(m.sizes)
        assert len(m.t_gpu_gpu) == len(m.sizes)
        assert len(m.t_d2h) == len(m.sizes)
        assert len(m.t_h2d) == len(m.sizes)

    def test_tables_are_block_by_size(self, small_measurement):
        m = small_measurement
        assert len(m.t_pack_device) == len(m.block_lengths)
        assert all(len(row) == len(m.sizes) for row in m.t_pack_device)

    def test_machine_name_recorded(self, small_measurement):
        assert small_measurement.machine_name == SUMMIT.name

    def test_default_sweep_dimensions(self):
        assert DEFAULT_SIZES[0] == 1
        assert DEFAULT_SIZES[-1] == 4 * 1024 * 1024
        assert 512 in DEFAULT_BLOCKS

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            measure_system(SUMMIT, sizes=[], block_lengths=[1])
        with pytest.raises(ValueError):
            measure_system(SUMMIT, sizes=[0], block_lengths=[1])
        with pytest.raises(ValueError):
            measure_system(SUMMIT, sizes=[8], block_lengths=[-1])


class TestMeasuredShapes:
    """The qualitative features of Fig. 9a / Fig. 10 must hold."""

    def test_cpu_floor_below_gpu_floor(self, small_measurement):
        assert small_measurement.t_cpu_cpu[0] < small_measurement.t_gpu_gpu[0]

    def test_transfer_times_monotonic_in_size(self, small_measurement):
        for curve in (
            small_measurement.t_cpu_cpu,
            small_measurement.t_gpu_gpu,
            small_measurement.t_d2h,
            small_measurement.t_h2d,
        ):
            assert list(curve) == sorted(curve)

    def test_pack_latency_decreases_with_block_length(self, small_measurement):
        m = small_measurement
        size_index = list(m.sizes).index(1 << 20)
        per_block = [row[size_index] for row in m.t_pack_device]
        assert per_block[0] > per_block[-1]

    def test_unpack_slower_than_pack(self, small_measurement):
        m = small_measurement
        pack = np.asarray(m.t_pack_device)
        unpack = np.asarray(m.t_unpack_device)
        assert (unpack >= pack).all()

    def test_oneshot_pack_slower_per_byte_than_device_for_large_blocks(
        self, small_measurement
    ):
        m = small_measurement
        block_index = list(m.block_lengths).index(512)
        size_index = list(m.sizes).index(1 << 20)
        assert m.t_pack_oneshot[block_index][size_index] > m.t_pack_device[block_index][size_index]


class TestSerialisation:
    def test_roundtrip_dict(self, small_measurement):
        clone = SystemMeasurement.from_dict(small_measurement.to_dict())
        assert clone.sizes == small_measurement.sizes
        assert clone.t_pack_device == small_measurement.t_pack_device

    def test_save_and_load(self, small_measurement, tmp_path):
        path = small_measurement.save(tmp_path / "measurement.json")
        loaded = SystemMeasurement.load(path)
        assert loaded.machine_name == small_measurement.machine_name
        assert loaded.t_cpu_cpu == small_measurement.t_cpu_cpu

    def test_measure_system_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        measure_system(SUMMIT, sizes=[64, 1024], block_lengths=[8], path=path)
        assert path.exists()

    def test_as_arrays(self, small_measurement):
        arrays = small_measurement.as_arrays()
        assert arrays["t_pack_device"].shape == (4, 4)
        assert arrays["sizes"].dtype == np.float64
