"""Error hierarchy for the simulated CUDA runtime.

The real CUDA runtime reports errors through ``cudaError_t`` codes; TEMPI
checks a handful of them (invalid value, out of memory, invalid memcpy
direction).  The simulation raises Python exceptions from this hierarchy so
tests can assert on precise failure modes.
"""

from __future__ import annotations


class CudaError(RuntimeError):
    """Base class of every error raised by the simulated CUDA runtime."""


class CudaInvalidValue(CudaError, ValueError):
    """An argument was outside the accepted range (``cudaErrorInvalidValue``)."""


class CudaOutOfMemory(CudaError, MemoryError):
    """A device allocation exceeded the simulated device capacity."""


class CudaMemcpyError(CudaError):
    """A memcpy was issued with an impossible direction or overlapping range."""


class CudaStreamError(CudaError):
    """An operation used a destroyed or foreign stream."""


class CudaBufferError(CudaError):
    """A buffer was used after free, or a slice fell outside the allocation."""
