"""Property-based tests for the selection subsystem (PR 4).

Two invariants pin the new subsystem to the old behaviour:

* a :class:`~repro.tempi.selection.ContendedSelector` over an **idle** NIC
  timeline decides exactly like a :class:`~repro.tempi.selection.ModelSelector`
  (and both like ``PerformanceModel.choose_method``) for any (object size,
  block length) — contention awareness must be a strict extension, not a
  drift, of the contention-free Eqs. 1-3 path;
* the plan-compiled ``Allgather``/``Allgatherv`` delivers byte-for-byte what
  the baseline system path delivers, for any strided vector datatype, rank
  count and per-rank contribution counts (including zero contributions,
  contiguous fallbacks and the self-section).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine.nic import NicTimeline
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.interposer import interpose
from repro.tempi.packer import Packer
from repro.tempi.selection import ContendedSelector, ModelSelector
from repro.tempi.strided_block import StridedBlock


def _packer(size: int, block_length: int) -> Packer:
    block_length = min(block_length, size)
    nblocks = size // block_length
    if nblocks <= 1:
        shape = StridedBlock(start=0, counts=(block_length,), strides=(1,))
    else:
        shape = StridedBlock(
            start=0, counts=(block_length, nblocks), strides=(1, 2 * block_length)
        )
    return Packer(shape, object_extent=shape.start + shape.extent)


@settings(max_examples=60, deadline=None)
@given(
    size_exp=st.integers(min_value=0, max_value=22),
    block=st.sampled_from((1, 2, 4, 8, 16, 32, 64, 128, 256, 512)),
)
def test_contended_selector_at_zero_load_equals_model(summit_model, size_exp, block):
    size = 1 << size_exp
    packer = _packer(size, block)
    nbytes = packer.packed_size(1)
    model_choice = ModelSelector(summit_model)(packer, nbytes)
    contended_choice = ContendedSelector(summit_model, NicTimeline(), 0)(packer, nbytes)
    assert contended_choice is model_choice
    assert model_choice is summit_model.choose_method(nbytes, min(block, size))


@st.composite
def allgather_cases(draw):
    """A world size, a vector datatype shape, and per-rank contribution counts."""
    nranks = draw(st.integers(min_value=2, max_value=4))
    nblocks = draw(st.integers(min_value=1, max_value=6))
    block = draw(st.integers(min_value=1, max_value=8))
    gap = draw(st.integers(min_value=0, max_value=8))  # gap 0: contiguous fallback
    counts = draw(st.lists(st.integers(min_value=0, max_value=2), min_size=nranks, max_size=nranks))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, nblocks, block, block + gap, counts, seed


def _run_allgather(use_tempi, summit_model, nranks, nblocks, block, pitch, counts, seed):
    def program(ctx):
        comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
        datatype = comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))
        extent = datatype.extent
        recvcounts = list(counts)
        recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
        send = ctx.gpu.malloc(max(1, counts[ctx.rank] * extent))
        recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
        rng = np.random.default_rng(seed + ctx.rank)
        send.data[:] = rng.integers(0, 255, send.nbytes, dtype=np.uint8)
        comm.Allgatherv(
            send,
            counts[ctx.rank],
            recv,
            recvcounts,
            recvdispls,
            sendtype=datatype,
            recvtypes=datatype,
        )
        return recv.data.copy()

    return World(nranks, ranks_per_node=2).run(program)


@settings(max_examples=25, deadline=None)
@given(allgather_cases())
def test_plan_allgatherv_equals_baseline(summit_model, case):
    nranks, nblocks, block, pitch, counts, seed = case
    baseline = _run_allgather(False, summit_model, nranks, nblocks, block, pitch, counts, seed)
    accelerated = _run_allgather(True, summit_model, nranks, nblocks, block, pitch, counts, seed)
    for rank, (expected, actual) in enumerate(zip(baseline, accelerated)):
        assert np.array_equal(expected, actual), (
            f"rank {rank} receive buffers diverge for {nranks} ranks, "
            f"vector({nblocks},{block},{pitch}), counts={counts}"
        )
