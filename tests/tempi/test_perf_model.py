"""Tests for the interpolating performance model (Sec. 4)."""

import pytest

from repro.tempi.config import PackMethod
from repro.tempi.perf_model import PerformanceModel

KIB = 1024
MIB = 1024 * 1024


class TestTransferInterpolation:
    def test_exact_grid_points_reproduced(self, summit_model, summit_measurement):
        for index, size in enumerate(summit_measurement.sizes):
            assert summit_model.transfer_time("cpu_cpu", size) == pytest.approx(
                summit_measurement.t_cpu_cpu[index]
            )

    def test_interpolation_between_points_is_bracketed(self, summit_model, summit_measurement):
        sizes = summit_measurement.sizes
        mid = (sizes[3] + sizes[4]) // 2
        value = summit_model.transfer_time("cpu_cpu", mid)
        low = summit_measurement.t_cpu_cpu[3]
        high = summit_measurement.t_cpu_cpu[4]
        assert min(low, high) <= value <= max(low, high)

    def test_extrapolation_beyond_sweep_grows(self, summit_model, summit_measurement):
        largest = summit_measurement.sizes[-1]
        assert summit_model.transfer_time("cpu_cpu", largest * 4) > summit_model.transfer_time(
            "cpu_cpu", largest
        )

    def test_unknown_kind_rejected(self, summit_model):
        with pytest.raises(KeyError):
            summit_model.transfer_time("nvme", 100)

    def test_invalid_size_rejected(self, summit_model):
        with pytest.raises(ValueError):
            summit_model.transfer_time("cpu_cpu", 0)

    def test_gpu_floor_above_cpu_floor(self, summit_model):
        assert summit_model.transfer_time("gpu_gpu", 8) > summit_model.transfer_time("cpu_cpu", 8)


class TestPackInterpolation:
    def test_exact_grid_point(self, summit_model, summit_measurement):
        block = summit_measurement.block_lengths[2]
        size = summit_measurement.sizes[10]
        expected = summit_measurement.t_pack_device[2][10]
        assert summit_model.pack_time("device", "pack", size, block) == pytest.approx(expected)

    def test_block_length_clamped_to_sweep(self, summit_model, summit_measurement):
        biggest = summit_measurement.block_lengths[-1]
        inside = summit_model.pack_time("device", "pack", MIB, biggest)
        beyond = summit_model.pack_time("device", "pack", MIB, biggest * 8)
        assert beyond == pytest.approx(inside)

    def test_unknown_table_rejected(self, summit_model):
        with pytest.raises(KeyError):
            summit_model.pack_time("magic", "pack", 1024, 8)

    def test_invalid_arguments_rejected(self, summit_model):
        with pytest.raises(ValueError):
            summit_model.pack_time("device", "pack", 0, 8)
        with pytest.raises(ValueError):
            summit_model.pack_time("device", "pack", 1024, 0)

    def test_never_negative(self, summit_model):
        assert summit_model.pack_time("oneshot", "unpack", 3, 1) >= 0.0


class TestMethodSelection:
    def test_small_objects_prefer_oneshot(self, summit_model):
        """Sec. 6.3: launch overhead and the lower CPU floor favour one-shot."""
        assert summit_model.choose_method(KIB, 8) is PackMethod.ONESHOT

    def test_large_objects_with_small_blocks_prefer_device(self, summit_model):
        assert summit_model.choose_method(4 * MIB, 8) is PackMethod.DEVICE

    def test_staged_never_best(self, summit_model):
        """Fig. 9b: there is no regime where the staged method wins."""
        for size in (KIB, 64 * KIB, MIB, 4 * MIB):
            for block in (1, 8, 64, 256):
                estimate = summit_model.estimate(size, block)
                assert estimate.staged >= min(estimate.oneshot, estimate.device) - 1e-12

    def test_estimate_consistent_with_choice(self, summit_model):
        estimate = summit_model.estimate(MIB, 16)
        expected = PackMethod.ONESHOT if estimate.oneshot <= estimate.device else PackMethod.DEVICE
        assert estimate.best() is expected

    def test_estimates_are_positive(self, summit_model):
        estimate = summit_model.estimate(KIB, 1)
        assert estimate.oneshot > 0 and estimate.device > 0 and estimate.staged > 0


class TestMemoisation:
    def test_repeated_queries_hit_cache(self, summit_measurement):
        model = PerformanceModel(summit_measurement)
        model.estimate(MIB, 8)
        queries_after_first = model.queries
        model.estimate(MIB, 8)
        assert model.cache_hits >= queries_after_first
        assert model.hit_rate > 0.4

    def test_hit_rate_zero_before_queries(self, summit_measurement):
        assert PerformanceModel(summit_measurement).hit_rate == 0.0


class TestExchangeEstimate:
    """Costing of overlapped stages: (serial, overlapped) pipeline estimates."""

    MESSAGES = [(64 * KIB, 8), (128 * KIB, 8), (256 * KIB, 8), (64 * KIB, 8)]

    def test_overlapped_never_exceeds_serial(self, summit_model):
        serial, overlapped = summit_model.exchange_estimate(self.MESSAGES)
        assert overlapped <= serial

    def test_single_message_has_no_overlap_win(self, summit_model):
        """One message is one chain: serial and overlapped coincide up to the
        wire-overlap discount of the serial sum."""
        serial, overlapped = summit_model.exchange_estimate([(MIB, 8)], wire_overlap=1.0)
        assert overlapped == pytest.approx(serial)

    def test_empty_exchange_is_free(self, summit_model):
        assert summit_model.exchange_estimate([]) == (0.0, 0.0)

    def test_zero_byte_messages_contribute_nothing(self, summit_model):
        """Empty sections never reach the pricing primitives (which reject
        nbytes <= 0) and never occupy the pipeline."""
        padded = [(0, 8)] + self.MESSAGES + [(0, 64)]
        assert summit_model.exchange_estimate(padded) == summit_model.exchange_estimate(
            self.MESSAGES
        )
        assert summit_model.exchange_estimate([(0, 8)]) == (0.0, 0.0)

    def test_default_overlap_is_the_canonical_constant(self, summit_model):
        from repro.machine.network import DEFAULT_WIRE_OVERLAP

        explicit = summit_model.exchange_estimate(
            self.MESSAGES, wire_overlap=DEFAULT_WIRE_OVERLAP
        )
        assert summit_model.exchange_estimate(self.MESSAGES) == explicit

    def test_more_peers_grow_both_estimates(self, summit_model):
        serial_2, overlapped_2 = summit_model.exchange_estimate(self.MESSAGES[:2])
        serial_4, overlapped_4 = summit_model.exchange_estimate(self.MESSAGES)
        assert serial_4 > serial_2
        assert overlapped_4 > overlapped_2

    def test_overlap_win_grows_with_peer_count(self, summit_model):
        """More peers mean more pack time hidden behind the wire."""
        def win(messages):
            serial, overlapped = summit_model.exchange_estimate(messages)
            return serial / overlapped

        few = win(self.MESSAGES[:2])
        many = win(self.MESSAGES * 3)
        assert many >= few

    def test_invalid_wire_overlap_rejected(self, summit_model):
        with pytest.raises(ValueError):
            summit_model.exchange_estimate(self.MESSAGES, wire_overlap=0.0)
        with pytest.raises(ValueError):
            summit_model.exchange_estimate(self.MESSAGES, wire_overlap=1.5)

    def test_invalid_nic_rejected(self, summit_model):
        with pytest.raises(ValueError):
            summit_model.exchange_estimate(self.MESSAGES, nic="psychic")

    def test_duplex_never_undercuts_inject_only(self, summit_model):
        """Pricing the second end of the wire can only ever add — including
        on heterogeneous message lists whose pack ordering clusters arrivals
        (regression: the duplex branch used to discard the send-side bound)."""
        lists = [
            self.MESSAGES,
            [(MIB, 8)],
            [(KIB, 1), (4 * MIB, 512), (64 * KIB, 8), (KIB, 64)],
            [(4 * MIB, 1), (KIB, 512), (KIB, 512), (KIB, 512)],
        ]
        for messages in lists:
            _, inject = summit_model.exchange_estimate(messages, nic="inject_only")
            _, duplex = summit_model.exchange_estimate(messages, nic="duplex")
            assert duplex >= inject

    def test_uniform_messages_are_duplex_invariant(self, summit_model):
        """A balanced list has no receive-side skew: identical books."""
        uniform = [(256 * KIB, 8)] * 4
        assert summit_model.exchange_estimate(uniform) == summit_model.exchange_estimate(
            uniform, nic="inject_only"
        )
