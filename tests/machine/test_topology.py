"""Tests for rank placement."""

import pytest

from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology


class TestConstruction:
    def test_node_count_rounds_up(self):
        assert Topology(7, ranks_per_node=6).nnodes == 2
        assert Topology(6, ranks_per_node=6).nnodes == 1
        assert Topology(13, ranks_per_node=2).nnodes == 7

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            Topology(0)
        with pytest.raises(ValueError):
            Topology(4, ranks_per_node=0)

    def test_too_many_ranks_per_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(12, ranks_per_node=SUMMIT.node.gpus + 1)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            Topology(SUMMIT.max_nodes + 1, ranks_per_node=1)

    def test_paper_scale_fits(self):
        topo = Topology(3072, ranks_per_node=6)
        assert topo.nnodes == 512


class TestPlacement:
    def test_block_placement(self):
        topo = Topology(12, ranks_per_node=6)
        assert topo.placement(0).node == 0
        assert topo.placement(5).node == 0
        assert topo.placement(6).node == 1
        assert topo.placement(11).node == 1

    def test_local_rank_and_gpu(self):
        topo = Topology(12, ranks_per_node=6)
        placement = topo.placement(8)
        assert placement.local_rank == 2
        assert placement.gpu == 2

    def test_same_node(self):
        topo = Topology(12, ranks_per_node=6)
        assert topo.same_node(0, 5)
        assert not topo.same_node(5, 6)

    def test_one_rank_per_node_never_shares(self):
        topo = Topology(8, ranks_per_node=1)
        assert not any(topo.same_node(0, r) for r in range(1, 8))

    def test_ranks_on_node(self):
        topo = Topology(10, ranks_per_node=4)
        assert topo.ranks_on_node(0) == [0, 1, 2, 3]
        assert topo.ranks_on_node(2) == [8, 9]

    def test_out_of_range_rank_rejected(self):
        topo = Topology(4)
        with pytest.raises(ValueError):
            topo.placement(4)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(4, ranks_per_node=2).ranks_on_node(5)
