"""Simulated-throughput harness for the event-driven fast path.

The simulator's wall-clock cost lives in its control plane: compiling a
typed collective into a :class:`~repro.tempi.plan.MessagePlan` (validation,
section building, method selection) and pricing each wire message through
the shared :class:`~repro.machine.nic.NicTimeline`.  This module drives
exactly that path — every rank posts one ``Ialltoallv``-shaped halo
exchange per round, each post is reserved on the shared NIC and the
arrivals are ingested at their destinations — and reports **simulated
messages per wall-clock second**, eager (plan cache and selection memo
off, the pre-fast-path behaviour) against cached (both on).

Both modes price identically — the caches replay the selection transcript
through the live selector, so every clock charge matches a fresh compile
(pinned by ``tests/property/test_property_fastpath.py``).  The harness also
reports the NIC's peak resident ledger footprint (``peak_pending`` records
plus the fixed struct-array ring), the compact-ledger half of the fast
path.

``benchmarks/bench_sim_throughput.py`` wraps this into the CLI benchmark
that writes ``BENCH_sim.json``; ``python -m repro.cli bench sim-throughput``
is the console entry point.
"""

from __future__ import annotations

import gc
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Mapping, Optional, Sequence

from repro.machine.nic import IngestRecord
from repro.machine.spec import SUMMIT
from repro.machine.topology import TopologySpec
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

__all__ = [
    "HALO_DEGREE",
    "SMOKE_RANKS",
    "FULL_RANKS",
    "EAGER_CONFIG",
    "CACHED_CONFIG",
    "FABRIC_SPEC",
    "ThroughputResult",
    "drive",
    "run_sweep",
    "check_sweep",
    "compare_baseline",
    "render_table",
]

#: 2-D stencil halo: each rank exchanges with 4 neighbours per round.
HALO_DEGREE = 4
#: Rank sweep for the CI smoke run.
SMOKE_RANKS = (256, 512, 1024)
#: Rank sweep for the full run.
FULL_RANKS = (256, 512, 1024, 2048)

#: The pre-fast-path control plane: recompile and reselect every round.
EAGER_CONFIG = TempiConfig(plan_cache=False, selection_memo=False)
#: The fast path: plan-template cache plus retained selection memo.
CACHED_CONFIG = TempiConfig()

#: The hierarchical sweep leg (``--topology fabric``): per-rank NVLink
#: islands, one shared NIC rail per node and 8-node leaves behind a 4x
#: oversubscribed spine, so every post resolves a path and cross-leaf
#: reservations bind the shared uplink ledgers.
FABRIC_SPEC = TopologySpec(
    ranks_per_node=2, island_size=1, rails_per_node=1,
    leaf_radix=8, oversubscription=4.0,
)

# The halo payload: 8 strided 32 B blocks per neighbour (a small 2-D face).
_BLOCKS, _BLOCK_BYTES, _STRIDE = 8, 32, 64


@dataclass(frozen=True)
class ThroughputResult:
    """One (rank count, config) measurement."""

    nranks: int
    iters: int
    messages: int
    wall_s: float
    messages_per_s: float
    peak_pending: int
    ledger_len: int
    ledger_nbytes: int
    plan_cache_hits: int
    plan_cache_misses: int
    selection_memo_hits: int
    selection_memo_misses: int


def _neighbors(rank: int, size: int, degree: int) -> list[int]:
    """The ``degree`` nearest ring neighbours of ``rank`` (the halo stencil)."""
    offsets = range(-(degree // 2), degree // 2 + 1)
    return sorted({(rank + d) % size for d in offsets if d} - {rank})


def drive(
    nranks: int,
    config: TempiConfig,
    model: PerformanceModel,
    *,
    iters: int,
    degree: int = HALO_DEGREE,
    topology: Optional[TopologySpec] = None,
) -> ThroughputResult:
    """Time ``iters`` halo-exchange rounds of the control plane.

    Every rank compiles one sparse ``alltoallv`` against its ``degree`` ring
    neighbours, reserves each post on the shared NIC and the arrivals are
    ingested per destination — single-threaded, so the wall clock measures
    the simulator, not the thread scheduler.  One untimed warm-up round
    populates the caches (and, in eager mode, the stream/staging pools) so
    the timed region sees the steady state of each configuration.
    ``messages_per_s`` comes from the *best* round (min timing, robust to GC
    and scheduler noise); ``wall_s`` is the whole timed region.

    A hierarchical ``topology`` spec adds the path-resolution leg: every
    reservation carries its resolved :class:`~repro.machine.topology.PathSpec`
    (rail cursors, shared uplink ledgers) and every ingestion record its
    receive-side rail — the extra per-message work ``--topology`` measures.
    """
    world = World(nranks, ranks_per_node=2, topology=topology)
    topo = world.topology if world.topology.hierarchical else None
    nic = world.nic
    peers = tuple(range(nranks))
    setup = []
    for ctx in world.contexts:
        comm = interpose(ctx, config, model=model)
        datatype = comm.Type_commit(Type_vector(_BLOCKS, _BLOCK_BYTES, _STRIDE, BYTE))
        counts = [0] * nranks
        for peer in _neighbors(ctx.rank, nranks, degree):
            counts[peer] = 1
        counts = tuple(counts)
        displs = tuple(peer * datatype.extent for peer in range(nranks))
        send = ctx.gpu.malloc(datatype.extent * nranks)
        recv = ctx.gpu.malloc(datatype.extent * nranks)
        setup.append((ctx, comm, datatype, counts, displs, send, recv, {}))

    def exchange_round() -> int:
        posted = 0
        inbound: dict[int, list[IngestRecord]] = {}
        for ctx, comm, datatype, counts, displs, send, recv, wires in setup:
            plan = comm._compile_collective(
                "alltoallv", peers,
                send, counts, displs, datatype,
                recv, counts, displs, datatype,
                nonblocking=True,
            )
            now = ctx.clock.now
            rank = ctx.rank
            for post in plan.post_stages:
                wire_s = wires.get(post.peer)
                if wire_s is None:
                    wires[post.peer] = wire_s = comm._message_time(post.nbytes, post.peer, True)
                path = None
                rail = None
                if topo is not None:
                    path = topo.resolve(rank, post.peer, device_buffers=True)
                    if not topo.same_node(rank, post.peer):
                        rail = topo.rail_key(post.peer)
                reservation = nic.reserve(rank, post.peer, now, wire_s, post.nbytes,
                                          path=path)
                inbound.setdefault(post.peer, []).append(
                    IngestRecord(reservation.start, rank, reservation.seq,
                                 wire_s, reservation.arrival, rail)
                )
                posted += 1
        for dest, records in inbound.items():
            nic.ingest(dest, records)
        return posted

    exchange_round()  # warm-up: populate caches and pools, untimed
    gc.collect()
    messages = 0
    best_round_s = float("inf")
    begin = perf_counter()
    for _ in range(iters):
        start = perf_counter()
        posted = exchange_round()
        best_round_s = min(best_round_s, perf_counter() - start)
        messages += posted
    wall_s = perf_counter() - begin
    per_round = messages // iters if iters else 0

    stats = [entry[1].tempi.stats for entry in setup]
    return ThroughputResult(
        nranks=nranks,
        iters=iters,
        messages=messages,
        wall_s=wall_s,
        messages_per_s=per_round / best_round_s if best_round_s > 0 else float("inf"),
        peak_pending=nic.peak_pending,
        ledger_len=nic.ledger_len(),
        ledger_nbytes=nic.ledger_nbytes(),
        plan_cache_hits=sum(s.plan_cache_hits for s in stats),
        plan_cache_misses=sum(s.plan_cache_misses for s in stats),
        selection_memo_hits=sum(s.selection_memo_hits for s in stats),
        selection_memo_misses=sum(s.selection_memo_misses for s in stats),
    )


def _eager_iters(nranks: int) -> int:
    """Eager rounds per rank count — few; the eager path is slow but steady."""
    return max(2, 1536 // nranks)


def _cached_iters(nranks: int) -> int:
    """Cached rounds per rank count — more, for timing resolution."""
    return max(5, 10240 // nranks)


def run_sweep(
    rank_counts: Sequence[int] = SMOKE_RANKS,
    model: Optional[PerformanceModel] = None,
    *,
    degree: int = HALO_DEGREE,
    topology: Optional[TopologySpec] = None,
) -> dict[int, dict]:
    """Measure eager vs cached throughput at every rank count.

    Returns ``{nranks: {"eager": {...}, "cached": {...}, "speedup": x}}``
    with the per-mode :class:`ThroughputResult` fields flattened to plain
    dicts (JSON-ready for ``BENCH_sim.json``).  ``topology`` runs the same
    sweep with a hierarchical world (path resolution and ledger binding per
    message), the ``--topology`` leg of the CLI benchmark.
    """
    if model is None:
        model = PerformanceModel(measure_system(SUMMIT))
    results: dict[int, dict] = {}
    for nranks in rank_counts:
        eager = drive(nranks, EAGER_CONFIG, model, iters=_eager_iters(nranks),
                      degree=degree, topology=topology)
        cached = drive(nranks, CACHED_CONFIG, model, iters=_cached_iters(nranks),
                       degree=degree, topology=topology)
        results[nranks] = {
            "eager": asdict(eager),
            "cached": asdict(cached),
            "speedup": cached.messages_per_s / eager.messages_per_s,
        }
    return results


def check_sweep(results: Mapping[int, Mapping]) -> None:
    """Sanity-assert one sweep: caches help, hit, and stay bounded."""
    for nranks, entry in results.items():
        eager, cached = entry["eager"], entry["cached"]
        speedup = entry["speedup"]
        assert speedup > 1.0, (
            f"{nranks} ranks: cached path slower than eager ({speedup:.2f}x)"
        )
        assert cached["plan_cache_hits"] > 0, f"{nranks} ranks: plan cache never hit"
        assert eager["plan_cache_hits"] == 0, f"{nranks} ranks: eager mode hit a plan cache"
        # The compact ledger is the whole variable-size NIC footprint: the
        # ring is fixed-capacity and the advisory pending books are bounded.
        nic_defaults = 4096
        assert cached["ledger_len"] <= nic_defaults, f"{nranks} ranks: ledger unbounded"
        assert cached["peak_pending"] > 0, f"{nranks} ranks: no pending records tracked"
    smallest = min(results)
    # Compilation cost grows with the rank count while the cached path stays
    # near-flat, so the win shrinks on tiny worlds: hold the hard floor only
    # at halo scale (the >=10x acceptance target lives in the full bench run).
    floor = 5.0 if smallest >= 256 else 1.5
    assert results[smallest]["speedup"] >= floor, (
        f"{smallest} ranks: fast-path speedup {results[smallest]['speedup']:.1f}x "
        f"under the {floor:.1f}x floor"
    )


def compare_baseline(
    results: Mapping[int, Mapping],
    baseline: Mapping,
    *,
    tolerance: float = 0.2,
) -> list[str]:
    """Regression-gate a fresh sweep against a committed ``BENCH_sim.json``.

    Compares the dimensionless cached/eager *speedup ratio* (stable across
    machines, unlike absolute msg/s) and the ledger bounds; a fresh speedup
    more than ``tolerance`` below the committed one is a failure.
    """
    failures: list[str] = []
    committed = baseline.get("results", {})
    for nranks, entry in results.items():
        ref = committed.get(str(nranks)) or committed.get(nranks)
        if ref is None:
            continue
        floor = (1.0 - tolerance) * float(ref["speedup"])
        if entry["speedup"] < floor:
            failures.append(
                f"{nranks} ranks: speedup {entry['speedup']:.2f}x regressed below "
                f"{floor:.2f}x (committed {ref['speedup']:.2f}x - {tolerance:.0%})"
            )
        if entry["cached"]["ledger_nbytes"] > int(ref["cached"]["ledger_nbytes"]) * 2:
            failures.append(
                f"{nranks} ranks: ledger footprint {entry['cached']['ledger_nbytes']} B "
                f"over 2x the committed {ref['cached']['ledger_nbytes']} B"
            )
    return failures


def render_table(results: Mapping[int, Mapping]) -> str:
    """Format one sweep for the console."""
    lines = [
        f"{'ranks':>6} {'eager msg/s':>12} {'cached msg/s':>13} {'speedup':>8} "
        f"{'peak pend':>10} {'ledger rows':>12} {'ledger KiB':>11}"
    ]
    for nranks in sorted(results):
        entry = results[nranks]
        cached = entry["cached"]
        lines.append(
            f"{nranks:>6} {entry['eager']['messages_per_s']:>12,.0f} "
            f"{cached['messages_per_s']:>13,.0f} {entry['speedup']:>7.1f}x "
            f"{cached['peak_pending']:>10,} {cached['ledger_len']:>12,} "
            f"{cached['ledger_nbytes'] / 1024:>11,.1f}"
        )
    return "\n".join(lines)
