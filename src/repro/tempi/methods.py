"""The three packing methods for MPI_Send/MPI_Recv (Sec. 4).

All three move the same packed bytes; they differ in where the intermediate
contiguous buffer lives and which transfer primitive carries it:

``device`` (Eq. 1)
    Pack into an intermediate **device** buffer, send it with the CUDA-aware
    path (``T_gpu-gpu``), unpack from a device buffer at the destination.
``oneshot`` (Eq. 2)
    Pack directly into **mapped host** memory over the interconnect
    (zero-copy), send it with the host path (``T_cpu-cpu``), unpack straight
    from mapped host memory at the destination.
``staged`` (Eq. 3)
    Like ``device`` but the intermediate buffer is explicitly copied to a
    pinned host buffer before the host-path send (and back on the receive).
    The paper finds it never wins on Summit (Fig. 9b); it is implemented so
    the benchmark can show the same thing.

The sender and receiver must stage symmetric buffers only in the sense that
the wire payload is identical packed bytes; each side picks its method from
its own (identical) model query, as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.memory import MemoryKind
from repro.mpi.datatype import BYTE
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.packer import Packer


class MethodError(RuntimeError):
    """A packing method was asked to do something impossible."""


def _staging_kind(method: PackMethod) -> MemoryKind:
    if method is PackMethod.DEVICE:
        return MemoryKind.DEVICE
    if method is PackMethod.ONESHOT:
        return MemoryKind.HOST_MAPPED
    if method is PackMethod.STAGED:
        return MemoryKind.DEVICE
    raise MethodError(f"{method} is not a concrete packing method")


def send_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    dest: int,
    tag: int,
) -> None:
    """Pack ``count`` objects from ``buffer`` and send them with ``method``."""
    nbytes = packer.packed_size(count)
    staging = cache.get_buffer(nbytes, _staging_kind(method))
    try:
        packer.pack(comm.gpu, buffer, staging, count)
        if method is PackMethod.STAGED:
            host = cache.get_buffer(nbytes, MemoryKind.HOST_PINNED)
            try:
                comm.gpu.memcpy_async(host, staging, nbytes)
                comm.gpu.stream_synchronize()
                comm.Send((host.view(0, nbytes), nbytes, BYTE), dest, tag)
            finally:
                cache.put_buffer(host)
        else:
            comm.Send((staging.view(0, nbytes), nbytes, BYTE), dest, tag)
    finally:
        cache.put_buffer(staging)


def recv_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    source: int = ANY_SOURCE,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> Status:
    """Receive packed objects with ``method`` and unpack them into ``buffer``."""
    nbytes = packer.packed_size(count)
    staging = cache.get_buffer(nbytes, _staging_kind(method))
    try:
        if method is PackMethod.STAGED:
            host = cache.get_buffer(nbytes, MemoryKind.HOST_PINNED)
            try:
                result = comm.Recv((host.view(0, nbytes), nbytes, BYTE), source, tag, status)
                comm.gpu.memcpy_async(staging, host, nbytes)
                comm.gpu.stream_synchronize()
            finally:
                cache.put_buffer(host)
        else:
            result = comm.Recv((staging.view(0, nbytes), nbytes, BYTE), source, tag, status)
        packer.unpack(comm.gpu, staging, buffer, count)
        return result
    finally:
        cache.put_buffer(staging)


def pack_to_user_buffer(
    comm,
    packer: Packer,
    buffer,
    count: int,
    outbuf,
    position: int,
) -> int:
    """TEMPI's ``MPI_Pack``: one kernel into the user's output buffer.

    Returns the updated position.  Used by the interposer when both buffers
    are usable from the GPU.
    """
    written = packer.pack(comm.gpu, buffer, outbuf, count, dst_offset=position)
    return position + written


def unpack_from_user_buffer(
    comm,
    packer: Packer,
    inbuf,
    position: int,
    buffer,
    count: int,
) -> int:
    """TEMPI's ``MPI_Unpack``; returns the updated position."""
    consumed = packer.unpack(comm.gpu, inbuf, buffer, count, src_offset=position)
    return position + consumed
