"""simlint: determinism-oriented static analysis for the TEMPI reproduction.

The simulator's core contract — knobs, caches and fast paths may change
*wall-clock* speed but must never move a *priced* (virtual-time) result — is
pinned dynamically by the Hypothesis bit-identity suites, which catch a
violation only after the fact, one fuzz seed at a time.  This package checks
the same invariants at the *source* level, as an AST/call-graph lint pass
with repo-specific rules:

========  ==================================================================
SIM001    no wall-clock (``time.time``/``perf_counter``/``datetime.now``) or
          ``random`` calls on priced paths (whitelist:
          ``tempi/measurement.py``, ``repro/bench/*``)
SIM002    selector/pricing code (the ``tempi/selection.py`` reachable set)
          may not call mutating ``NicTimeline``/``ProgressEngine`` APIs —
          pricing must be a pure read
SIM003    no iteration over unordered ``set``s or insertion-ordered
          rank-keyed dicts feeding clock arithmetic (determinism requires
          explicit ``(post_time, source, seq)``-style ordering)
SIM004    every ``TempiConfig`` field documented in ``docs/CONFIG.md`` and
          every ``InterposerStats`` counter in ``docs/ARCHITECTURE.md``
SIM005    float accumulation via ``+=`` inside ledger/port loops in
          ``machine/nic.py``/``tempi/progress.py`` must use the ledger
          helpers (ordering-stable summation)
========  ==================================================================

Each rule carries an escape hatch: a ``# simlint: disable=SIMxxx -- reason``
comment on the offending line suppresses that rule there; the justification
after ``--`` is **required** (a bare disable is itself reported as SIM000).

Run it as ``python -m tools.analyze`` (from the repository root) or
``repro lint``; output is ``file:line: SIMxxx message`` with a nonzero exit
when anything fires, so CI can gate on it.
"""

from __future__ import annotations

from tools.analyze.core import Violation, run_lint

__all__ = ["Violation", "run_lint"]
