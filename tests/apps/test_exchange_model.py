"""Tests for the analytic halo-exchange model (Fig. 12)."""

import pytest

from repro.apps.exchange_model import (
    ExchangeBreakdown,
    halo_exchange_speedup,
    model_halo_exchange,
)
from repro.apps.halo import HaloSpec


class TestBreakdownBasics:
    def test_total_is_sum_of_phases(self):
        breakdown = ExchangeBreakdown(1, 1, 1, 0.1, 0.2, 0.3)
        assert breakdown.total_s == pytest.approx(0.6)

    def test_rank_count(self):
        breakdown = model_halo_exchange(8, 6)
        assert breakdown.nranks == 48
        assert breakdown.nodes == 8
        assert breakdown.ranks_per_node == 6

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            model_halo_exchange(0, 1)
        with pytest.raises(ValueError):
            model_halo_exchange(1, 0)


class TestShapes:
    """The qualitative Fig. 12 trends."""

    def test_baseline_pack_dwarfs_tempi_pack(self):
        baseline = model_halo_exchange(2, 6, tempi=False)
        accelerated = model_halo_exchange(2, 6, tempi=True)
        assert baseline.pack_s / accelerated.pack_s > 100

    def test_comm_phase_identical_between_modes(self):
        baseline = model_halo_exchange(4, 6, tempi=False)
        accelerated = model_halo_exchange(4, 6, tempi=True)
        assert baseline.comm_s == pytest.approx(accelerated.comm_s)

    def test_pack_time_independent_of_rank_count(self):
        """Fig. 12a: per-rank data volume is constant, so pack time is flat."""
        small = model_halo_exchange(1, 6, tempi=True)
        large = model_halo_exchange(64, 6, tempi=True)
        assert small.pack_s == pytest.approx(large.pack_s)

    def test_comm_grows_then_saturates_with_nodes(self):
        one = model_halo_exchange(1, 6, tempi=True)
        eight = model_halo_exchange(8, 6, tempi=True)
        many = model_halo_exchange(64, 6, tempi=True)
        assert eight.comm_s > one.comm_s
        assert many.comm_s >= eight.comm_s

    def test_unpack_slower_than_pack(self):
        breakdown = model_halo_exchange(8, 6, tempi=True)
        assert breakdown.unpack_s > breakdown.pack_s

    def test_speedup_decreases_with_scale(self):
        """Fig. 12b: communication dilutes the datatype-handling win."""
        small = halo_exchange_speedup(1, 1)
        mid = halo_exchange_speedup(8, 6)
        large = halo_exchange_speedup(512, 6)
        assert small > mid >= large

    def test_speedup_order_of_magnitude_matches_paper(self):
        """Paper: ~917x at 3072 ranks, thousands at small scale."""
        large = halo_exchange_speedup(512, 6)
        assert 50 < large < 20000
        small = halo_exchange_speedup(1, 1)
        assert small > large

    def test_smaller_domains_have_smaller_absolute_times(self):
        small_spec = HaloSpec(nx=64, ny=64, nz=64)
        small = model_halo_exchange(8, 6, spec=small_spec, tempi=True)
        paper = model_halo_exchange(8, 6, tempi=True)
        assert small.total_s < paper.total_s
