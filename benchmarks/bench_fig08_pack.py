"""Figure 8: MPI_Pack latency for 2-D objects, baseline vs. TEMPI.

The paper packs seven 2-D object configurations (vector or subarray
description, 1 KiB-4 MiB, 1-256 B contiguous blocks, counts 1-2, 512 B pitch)
and finds speedups from 5.7x to 242,000x: the baseline issues one
``cudaMemcpyAsync`` per contiguous block, TEMPI one kernel per call.

Latencies here are simulated (virtual) time; the pytest-benchmark wall time
measures the harness.  The baseline engine runs in timing-only mode for this
sweep because enumerating four million block copies moves no information the
cost model does not already have.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, format_us
from repro.bench.workloads import fig8_configurations
from repro.mpi.world import World
from repro.tempi.interposer import interpose


def _pack_latency(config, summit_model, use_tempi: bool) -> float:
    world = World(1)
    ctx = world.contexts[0]
    comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
    if not use_tempi:
        # Timing-only baseline: per-block costs are charged analytically.
        ctx.comm.baseline.move_data = False
    datatype = comm.Type_commit(config.build())
    source = ctx.gpu.malloc(config.extent_bytes + datatype.extent)
    packed = ctx.gpu.malloc(datatype.size * config.count)
    start = ctx.clock.now
    comm.Pack((source, config.count, datatype), packed, 0)
    return ctx.clock.now - start


def _sweep(summit_model):
    rows = []
    for config in fig8_configurations():
        baseline = _pack_latency(config, summit_model, use_tempi=False)
        tempi = _pack_latency(config, summit_model, use_tempi=True)
        rows.append((config, baseline, tempi))
    return rows


@pytest.mark.benchmark(group="fig08")
def test_fig08_pack_speedup(benchmark, summit_model, report):
    rows = benchmark.pedantic(_sweep, args=(summit_model,), rounds=1, iterations=1)

    table = []
    speedups = []
    for config, baseline, tempi in rows:
        speedup = baseline / tempi
        speedups.append((config.label, speedup))
        table.append(
            [
                config.label,
                f"{config.nblocks * config.count:,}",
                format_us(baseline),
                format_us(tempi),
                f"{speedup:,.0f}x",
            ]
        )
    print("\nFigure 8 — MPI_Pack latency (simulated us)")
    print(format_table(["configuration", "blocks", "baseline", "TEMPI", "speedup"], table))

    # Shape claims: TEMPI always wins; the win grows with the block count; the
    # largest configuration reaches a factor of tens of thousands.
    assert all(s > 1 for _, s in speedups)
    by_blocks = sorted(rows, key=lambda row: row[0].nblocks * row[0].count)
    assert (by_blocks[-1][1] / by_blocks[-1][2]) > (by_blocks[0][1] / by_blocks[0][2])
    largest = max(s for _, s in speedups)
    smallest = min(s for _, s in speedups)
    assert largest > 10_000

    report.add(
        "Fig. 8",
        "MPI_Pack speedup range",
        "5.7x - 242,000x",
        f"{smallest:,.0f}x - {largest:,.0f}x",
        matches_shape=largest > 10_000 and smallest > 1,
        note="largest speedup on the 4 MiB / 1 B-block object, as in the paper",
    )


@pytest.mark.benchmark(group="fig08")
def test_fig08_construction_independence(benchmark, summit_model, report):
    """The 'vec 1KiB 1/8' and 'sub 1KiB 1/8' bars: same object, same latency."""
    configs = {c.label: c for c in fig8_configurations()}

    def measure():
        vec = _pack_latency(configs["vec 1KiB 1/8"], summit_model, use_tempi=True)
        sub = _pack_latency(configs["sub 1KiB 1/8"], summit_model, use_tempi=True)
        return vec, sub

    vec, sub = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nvector description : {format_us(vec)} us")
    print(f"subarray description: {format_us(sub)} us")
    assert vec == pytest.approx(sub, rel=0.05)
    report.add(
        "Fig. 8",
        "TEMPI latency independent of datatype construction",
        "vector and subarray bars equal",
        f"{format_us(vec)} us vs {format_us(sub)} us",
        matches_shape=abs(vec - sub) / vec < 0.05,
    )
