"""The three packing methods for MPI_Send/MPI_Recv (Sec. 4).

All three move the same packed bytes; they differ in where the intermediate
contiguous buffer lives and which transfer primitive carries it:

``device`` (Eq. 1)
    Pack into an intermediate **device** buffer, send it with the CUDA-aware
    path (``T_gpu-gpu``), unpack from a device buffer at the destination.
``oneshot`` (Eq. 2)
    Pack directly into **mapped host** memory over the interconnect
    (zero-copy), send it with the host path (``T_cpu-cpu``), unpack straight
    from mapped host memory at the destination.
``staged`` (Eq. 3)
    Like ``device`` but the intermediate buffer is explicitly copied to a
    pinned host buffer before the host-path send (and back on the receive).
    The paper finds it never wins on Summit (Fig. 9b); it is implemented so
    the benchmark can show the same thing.

The sender and receiver must stage symmetric buffers only in the sense that
the wire payload is identical packed bytes; each side picks its method from
its own (identical) model query, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.memory import MemoryKind
from repro.mpi.collectives import _next_collective_tag, _post_raw, _receive_raw
from repro.mpi.datatype import BYTE
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.packer import Packer

#: The interposer's per-message method policy: ``(packer, nbytes) -> method``.
#: Routing it through a callback keeps the model-query overhead accounting
#: (and its memoisation) in the interposer, where the paper charges it.
MethodSelector = Callable[[Packer, int], PackMethod]


class MethodError(RuntimeError):
    """A packing method was asked to do something impossible."""


def _staging_kind(method: PackMethod) -> MemoryKind:
    if method is PackMethod.DEVICE:
        return MemoryKind.DEVICE
    if method is PackMethod.ONESHOT:
        return MemoryKind.HOST_MAPPED
    if method is PackMethod.STAGED:
        return MemoryKind.DEVICE
    raise MethodError(f"{method} is not a concrete packing method")


def send_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    dest: int,
    tag: int,
) -> None:
    """Pack ``count`` objects from ``buffer`` and send them with ``method``."""
    nbytes = packer.packed_size(count)
    staging = cache.get_buffer(nbytes, _staging_kind(method))
    try:
        packer.pack(comm.gpu, buffer, staging, count)
        if method is PackMethod.STAGED:
            host = cache.get_buffer(nbytes, MemoryKind.HOST_PINNED)
            try:
                comm.gpu.memcpy_async(host, staging, nbytes)
                comm.gpu.stream_synchronize()
                comm.Send((host.view(0, nbytes), nbytes, BYTE), dest, tag)
            finally:
                cache.put_buffer(host)
        else:
            comm.Send((staging.view(0, nbytes), nbytes, BYTE), dest, tag)
    finally:
        cache.put_buffer(staging)


def recv_packed(
    comm,
    cache: ResourceCache,
    packer: Packer,
    method: PackMethod,
    buffer,
    count: int,
    source: int = ANY_SOURCE,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> Status:
    """Receive packed objects with ``method`` and unpack them into ``buffer``."""
    nbytes = packer.packed_size(count)
    staging = cache.get_buffer(nbytes, _staging_kind(method))
    try:
        if method is PackMethod.STAGED:
            host = cache.get_buffer(nbytes, MemoryKind.HOST_PINNED)
            try:
                result = comm.Recv((host.view(0, nbytes), nbytes, BYTE), source, tag, status)
                comm.gpu.memcpy_async(staging, host, nbytes)
                comm.gpu.stream_synchronize()
            finally:
                cache.put_buffer(host)
        else:
            result = comm.Recv((staging.view(0, nbytes), nbytes, BYTE), source, tag, status)
        packer.unpack(comm.gpu, staging, buffer, count)
        return result
    finally:
        cache.put_buffer(staging)


# --------------------------------------------------------------------------- #
# Packed collectives (the interposed all-to-all-v family)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PackedSection:
    """One section of an interposed typed collective.

    ``count`` objects of a committed, accelerated datatype starting ``displ``
    bytes into the user buffer, bound to the :class:`Packer` its commit-time
    handler cached.  Sections addressed to one peer travel concatenated in
    section order — the same wire layout as the system path, so the two are
    interchangeable message-for-message.
    """

    peer: int
    count: int
    displ: int
    packer: Packer

    @property
    def packed_bytes(self) -> int:
        return self.packer.packed_size(self.count) if self.count else 0


def _group_sections(sections: Sequence[PackedSection]) -> dict[int, list[PackedSection]]:
    groups: dict[int, list[PackedSection]] = {}
    for section in sections:
        if section.count:
            groups.setdefault(section.peer, []).append(section)
    return groups


class _CollectiveStaging:
    """Per-call view of the cache's keyed staging buffers.

    With caching on, buffers stay bound to their ``(role, peer, kind)`` key
    inside the cache across collective calls (the per-peer reuse of Sec. 5).
    With caching off there is nothing to hold them, so this tracker releases
    every acquisition when the call ends — mirroring how ``send_packed``
    returns its checkout-style buffers — instead of leaking one allocation
    per peer per call.
    """

    def __init__(self, cache: ResourceCache) -> None:
        self.cache = cache
        self._transient: list = []

    def get(self, key, nbytes: int, kind: MemoryKind):
        buffer = self.cache.get_persistent(key, nbytes, kind)
        if not self.cache.enabled:
            self._transient.append(buffer)
        return buffer

    def release(self) -> None:
        for buffer in self._transient:
            self.cache.put_buffer(buffer)
        self._transient.clear()


def _pack_group(
    comm,
    staging_of: _CollectiveStaging,
    group: Sequence[PackedSection],
    method: PackMethod,
    send,
    peer: int,
    role: str,
):
    """Pack one peer's sections into (persistent) staging; returns the bytes.

    The staging buffer is keyed by peer and kind so an iterative application
    finds the same buffer on every exchange (Sec. 5's reuse argument, applied
    per collective destination instead of per send).
    """
    total = sum(section.packed_bytes for section in group)
    kind = _staging_kind(method)
    staging = staging_of.get(("collective", role, peer, kind), total, kind)
    offset = 0
    for section in group:
        section.packer.pack(
            comm.gpu, send.view(section.displ), staging, section.count, dst_offset=offset
        )
        offset += section.packed_bytes
    if method is PackMethod.STAGED:
        host = staging_of.get(
            ("collective", role + "-host", peer, MemoryKind.HOST_PINNED),
            total,
            MemoryKind.HOST_PINNED,
        )
        comm.gpu.memcpy_async(host, staging, total)
        comm.gpu.stream_synchronize()
        return host.data[:total]
    return staging.data[:total]


def _unpack_group(
    comm,
    staging_of: _CollectiveStaging,
    group: Sequence[PackedSection],
    method: PackMethod,
    payload,
    recv,
    peer: int,
) -> None:
    """Scatter one peer's concatenated packed payload into the user buffer."""
    total = sum(section.packed_bytes for section in group)
    kind = _staging_kind(method)
    staging = staging_of.get(("collective", "recv", peer, kind), total, kind)
    if method is PackMethod.STAGED:
        host = staging_of.get(
            ("collective", "recv-host", peer, MemoryKind.HOST_PINNED),
            total,
            MemoryKind.HOST_PINNED,
        )
        host.data[:total] = payload
        comm.gpu.memcpy_async(staging, host, total)
        comm.gpu.stream_synchronize()
    else:
        staging.data[:total] = payload
    offset = 0
    for section in group:
        section.packer.unpack(
            comm.gpu, staging, recv.view(section.displ), section.count, src_offset=offset
        )
        offset += section.packed_bytes


def alltoallv_packed(
    comm,
    cache: ResourceCache,
    select: MethodSelector,
    send,
    send_sections: Sequence[PackedSection],
    recv,
    recv_sections: Sequence[PackedSection],
) -> dict[str, int]:
    """TEMPI's datatype-carrying all-to-all-v: one pack kernel per peer.

    Where the system path pays one ``cudaMemcpyAsync`` per contiguous block
    of every section, this path packs each peer's segment with a single
    kernel into a cached staging buffer whose memory kind follows the
    per-message model decision (one-shot → mapped host, device → device,
    staged → device plus an explicit pinned-host bounce).  The wire is
    charged with the same analytic all-to-all-v cost as the system path,
    split by each message's transfer path, so baseline-vs-TEMPI comparisons
    isolate exactly the datatype handling the paper accelerates.

    Returns the per-method message counts (for :class:`InterposerStats`).
    """
    tag = _next_collective_tag(comm)
    send_groups = _group_sections(send_sections)
    recv_groups = _group_sections(recv_sections)
    now = comm.clock.now
    pair_methods: dict[int, PackMethod] = {}
    method_counts: dict[str, int] = {}
    staging_of = _CollectiveStaging(cache)

    try:
        # Pack and post every outgoing peer segment.
        for peer, group in send_groups.items():
            if peer == comm.rank:
                continue
            total = sum(section.packed_bytes for section in group)
            method = select(group[0].packer, total)
            pair_methods[peer] = method
            method_counts[method.value] = method_counts.get(method.value, 0) + 1
            payload = _pack_group(comm, staging_of, group, method, send, peer, "send")
            _post_raw(comm, peer, tag, payload.copy(), comm.clock.now)

        # Local sections bounce through device staging without touching the wire.
        local_send = send_groups.get(comm.rank, [])
        local_recv = recv_groups.get(comm.rank, [])
        if sum(s.packed_bytes for s in local_send) != sum(s.packed_bytes for s in local_recv):
            raise MethodError("self send/recv sections disagree on packed size")
        if local_send:
            payload = _pack_group(
                comm, staging_of, local_send, PackMethod.DEVICE, send, comm.rank, "send"
            )
            _unpack_group(
                comm, staging_of, local_recv, PackMethod.DEVICE, payload, recv, comm.rank
            )

        # Receive and unpack every incoming peer segment.
        latest = now
        for peer, group in recv_groups.items():
            if peer == comm.rank:
                continue
            total = sum(section.packed_bytes for section in group)
            method = select(group[0].packer, total)
            pair_methods.setdefault(peer, method)
            envelope = _receive_raw(comm, peer, tag)
            if envelope.nbytes != total:
                raise MethodError(
                    f"rank {comm.rank} expected {total} packed bytes from {peer}, "
                    f"got {envelope.nbytes}"
                )
            _unpack_group(comm, staging_of, group, method, envelope.payload, recv, peer)
            latest = max(latest, envelope.available_at)
    finally:
        staging_of.release()

    # Charge the wire analytically, splitting pairs by their transfer path.
    comm.clock.advance_to(latest)
    device_pairs = [0] * comm.size
    host_pairs = [0] * comm.size
    for peer, method in pair_methods.items():
        sent = sum(s.packed_bytes for s in send_groups.get(peer, []))
        received = sum(s.packed_bytes for s in recv_groups.get(peer, []))
        nbytes = max(sent, received)
        if method is PackMethod.DEVICE:
            device_pairs[peer] = nbytes
        else:
            host_pairs[peer] = nbytes
    if any(device_pairs):
        comm.clock.advance(
            comm.network.alltoallv_time(
                device_pairs, comm.topology, comm.rank, device_buffers=True
            )
        )
    if any(host_pairs):
        comm.clock.advance(
            comm.network.alltoallv_time(
                host_pairs, comm.topology, comm.rank, device_buffers=False
            )
        )
    return method_counts


def neighbor_packed(
    comm,
    cache: ResourceCache,
    select: MethodSelector,
    send,
    send_sections: Sequence[PackedSection],
    recv,
    recv_sections: Sequence[PackedSection],
) -> dict[str, int]:
    """TEMPI's neighbour all-to-all-v: identical engine, sparse section lists.

    The section lists already carry explicit peers (with duplicates allowed,
    concatenated in list order), so the dense and neighbour collectives share
    :func:`alltoallv_packed` exactly the way the system-path siblings share
    their engine — same semantics, same cost accounting.
    """
    return alltoallv_packed(comm, cache, select, send, send_sections, recv, recv_sections)


def pack_to_user_buffer(
    comm,
    packer: Packer,
    buffer,
    count: int,
    outbuf,
    position: int,
) -> int:
    """TEMPI's ``MPI_Pack``: one kernel into the user's output buffer.

    Returns the updated position.  Used by the interposer when both buffers
    are usable from the GPU.
    """
    written = packer.pack(comm.gpu, buffer, outbuf, count, dst_offset=position)
    return position + written


def unpack_from_user_buffer(
    comm,
    packer: Packer,
    inbuf,
    position: int,
    buffer,
    count: int,
) -> int:
    """TEMPI's ``MPI_Unpack``; returns the updated position."""
    consumed = packer.unpack(comm.gpu, inbuf, buffer, count, src_offset=position)
    return position + consumed
