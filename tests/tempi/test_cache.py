"""Tests for the resource cache (Sec. 5)."""

import pytest

from repro.gpu.cost_model import SUMMIT_GPU
from repro.gpu.memory import MemoryKind
from repro.tempi.cache import ResourceCache


class TestBufferCache:
    def test_miss_allocates_and_charges_time(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        before = summit_runtime.clock.now
        buf = cache.get_buffer(4096, MemoryKind.DEVICE)
        assert buf.is_device
        assert summit_runtime.clock.now - before == pytest.approx(SUMMIT_GPU.alloc_s)
        assert cache.stats.buffer_misses == 1

    def test_hit_is_free(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        buf = cache.get_buffer(4096, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        before = summit_runtime.clock.now
        again = cache.get_buffer(4096, MemoryKind.DEVICE)
        assert again is buf
        assert summit_runtime.clock.now == before
        assert cache.stats.buffer_hits == 1

    def test_disabled_cache_always_misses(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        buf = cache.get_buffer(1024, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        again = cache.get_buffer(1024, MemoryKind.DEVICE)
        assert again is not buf
        assert cache.stats.buffer_hits == 0

    def test_disabled_cache_frees_device_buffers(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        buf = cache.get_buffer(1024, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        assert buf.freed

    def test_pinned_host_buffers_cached_separately(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        pinned = cache.get_buffer(256, MemoryKind.HOST_PINNED)
        cache.put_buffer(pinned)
        mapped = cache.get_buffer(256, MemoryKind.HOST_MAPPED)
        assert mapped is not pinned


class TestStreamCache:
    def test_stream_reuse(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        stream = cache.get_stream()
        cache.put_stream(stream)
        assert cache.get_stream() is stream
        assert cache.stats.stream_hits == 1

    def test_disabled_cache_destroys_streams(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        stream = cache.get_stream()
        cache.put_stream(stream)
        assert cache.get_stream() is not stream


class TestQueryMemoisation:
    def test_compute_called_once(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        calls = []
        compute = lambda: calls.append(1) or 42  # noqa: E731
        assert cache.memoize("key", compute) == 42
        assert cache.memoize("key", compute) == 42
        assert len(calls) == 1
        assert cache.stats.query_hits == 1

    def test_disabled_cache_recomputes(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        calls = []
        compute = lambda: calls.append(1) or 42  # noqa: E731
        cache.memoize("key", compute)
        cache.memoize("key", compute)
        assert len(calls) == 2


class TestStatsAndClear:
    def test_hit_rate(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        assert cache.stats.hit_rate() == 0.0
        buf = cache.get_buffer(64, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        cache.get_buffer(64, MemoryKind.DEVICE)
        assert cache.stats.hit_rate() == pytest.approx(0.5)

    def test_clear_and_len(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        cache.put_buffer(cache.get_buffer(64, MemoryKind.DEVICE))
        cache.put_stream(cache.get_stream())
        cache.memoize("x", lambda: 1)
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0


class TestPersistentBuffers:
    """Keyed per-peer staging buffers for the interposed collectives."""

    def test_first_acquisition_misses(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        buf = cache.get_buffer(0, MemoryKind.DEVICE)  # warm nothing
        cache.put_buffer(buf)
        first = cache.get_persistent(("send", 3), 1024, MemoryKind.DEVICE)
        assert first.is_device
        assert cache.stats.persistent_misses == 1

    def test_same_key_reuses_same_buffer(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        first = cache.get_persistent(("send", 3), 1024, MemoryKind.DEVICE)
        before = summit_runtime.clock.now
        again = cache.get_persistent(("send", 3), 1024, MemoryKind.DEVICE)
        assert again is first
        assert summit_runtime.clock.now == before  # hits are free
        assert cache.stats.persistent_hits == 1

    def test_smaller_request_still_hits(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        first = cache.get_persistent("k", 1024, MemoryKind.DEVICE)
        assert cache.get_persistent("k", 512, MemoryKind.DEVICE) is first

    def test_growth_replaces_buffer(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        first = cache.get_persistent("k", 256, MemoryKind.DEVICE)
        bigger = cache.get_persistent("k", 4096, MemoryKind.DEVICE)
        assert bigger is not first
        assert bigger.nbytes >= 4096
        assert cache.stats.persistent_misses == 2

    def test_kind_change_replaces_buffer(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        device = cache.get_persistent("k", 256, MemoryKind.DEVICE)
        mapped = cache.get_persistent("k", 256, MemoryKind.HOST_MAPPED)
        assert mapped is not device
        assert mapped.kind is MemoryKind.HOST_MAPPED

    def test_distinct_keys_distinct_buffers(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        a = cache.get_persistent(("send", 0), 64, MemoryKind.DEVICE)
        b = cache.get_persistent(("send", 1), 64, MemoryKind.DEVICE)
        assert a is not b

    def test_disabled_cache_never_retains(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        first = cache.get_persistent("k", 64, MemoryKind.DEVICE)
        again = cache.get_persistent("k", 64, MemoryKind.DEVICE)
        assert again is not first
        assert cache.stats.persistent_hits == 0

    def test_clear_drops_persistent_buffers(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        cache.get_persistent("k", 64, MemoryKind.DEVICE)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
